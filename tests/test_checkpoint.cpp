// Crash-safe checkpoint/restore tests: container-level rejection of every
// malformed input (truncation, bit flips, wrong kind, trailing bytes), and
// the kill-and-resume property — a session snapshotted at any slot t,
// destroyed, and restored continues bitwise-identically (schedule, corridor
// bounds, cost) to the uninterrupted run, on both backends, including
// WindowedLcp mid-window and trackers snapshotted mid-advance_repeated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/checkpoint_store.hpp"
#include "core/convex_pwl.hpp"
#include "core/cost_function.hpp"
#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "offline/work_function.hpp"
#include "online/lcp.hpp"
#include "online/lcp_window.hpp"
#include "scenario/trace_zoo.hpp"
#include "util/fault_injection.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using rs::core::CheckpointCorruptionError;
using rs::core::CheckpointError;
using rs::core::CheckpointFormatError;
using rs::core::CheckpointMismatchError;
using rs::core::CheckpointReader;
using rs::core::CheckpointWriter;
using rs::core::ConvexPwl;
using rs::core::Problem;
using rs::offline::WorkFunctionTracker;
using rs::online::Lcp;
using rs::online::OnlineContext;
using rs::online::WindowedLcp;
using rs::util::corrupt_bit;
using rs::util::truncate_bytes;
using Backend = WorkFunctionTracker::Backend;

// A small convex-PWL-friendly instance (hinge slot costs).
Problem hinge_problem(int m, double beta, int horizon, std::uint64_t seed) {
  rs::util::Rng rng(seed);
  std::vector<rs::core::CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(horizon));
  for (int t = 0; t < horizon; ++t) {
    const double center = rng.uniform(0.0, static_cast<double>(m));
    fs.push_back(std::make_shared<rs::core::AffineAbsCost>(
        rng.uniform(0.5, 3.0), center, rng.uniform(0.0, 2.0)));
  }
  return Problem(m, beta, std::move(fs));
}

Problem table_problem(int m, double beta, int horizon, std::uint64_t seed) {
  rs::util::Rng rng(seed);
  return rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kConvexTable, horizon, m, beta);
}

// ---------------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------------

TEST(CheckpointContainer, WriterReaderRoundTrip) {
  CheckpointWriter w;
  w.u8(7);
  w.u32(123456u);
  w.u64(0xDEADBEEFCAFEBABEull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.141592653589793);
  w.f64(rs::util::kInf);
  w.f64(-0.0);
  const std::vector<std::uint8_t> sealed =
      w.seal(rs::core::kTrackerCheckpointKind);

  EXPECT_EQ(rs::core::checkpoint_kind(sealed), rs::core::kTrackerCheckpointKind);

  CheckpointReader r(sealed, rs::core::kTrackerCheckpointKind);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.u64(), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(std::isinf(r.f64()));
  // -0.0 must survive as a bit pattern, not collapse to +0.0.
  EXPECT_TRUE(std::signbit(r.f64()));
  EXPECT_NO_THROW(r.finish());
}

TEST(CheckpointContainer, RejectsWrongKind) {
  CheckpointWriter w;
  w.u32(1);
  const std::vector<std::uint8_t> sealed =
      w.seal(rs::core::kTrackerCheckpointKind);
  EXPECT_THROW(CheckpointReader(sealed, rs::core::kLcpCheckpointKind),
               CheckpointFormatError);
}

TEST(CheckpointContainer, RejectsEveryTruncation) {
  CheckpointWriter w;
  w.u32(99);
  w.f64(2.5);
  const std::vector<std::uint8_t> sealed =
      w.seal(rs::core::kTrackerCheckpointKind);
  for (std::size_t keep = 0; keep < sealed.size(); ++keep) {
    const std::vector<std::uint8_t> cut = truncate_bytes(sealed, keep);
    EXPECT_THROW(CheckpointReader(cut, rs::core::kTrackerCheckpointKind),
                 CheckpointError)
        << "keep=" << keep;
  }
}

TEST(CheckpointContainer, RejectsEveryBitFlip) {
  CheckpointWriter w;
  w.u32(42);
  w.f64(1.75);
  const std::vector<std::uint8_t> sealed =
      w.seal(rs::core::kTrackerCheckpointKind);
  for (std::uint64_t bit = 0; bit < sealed.size() * 8; ++bit) {
    const std::vector<std::uint8_t> bad = corrupt_bit(sealed, bit);
    EXPECT_THROW(
        {
          CheckpointReader r(bad, rs::core::kTrackerCheckpointKind);
          r.u32();
          r.f64();
          r.finish();
        },
        CheckpointError)
        << "bit=" << bit;
  }
}

TEST(CheckpointContainer, RejectsTrailingPayloadBytes) {
  CheckpointWriter w;
  w.u32(5);
  w.u8(1);  // one byte the reader below never consumes
  const std::vector<std::uint8_t> sealed =
      w.seal(rs::core::kTrackerCheckpointKind);
  CheckpointReader r(sealed, rs::core::kTrackerCheckpointKind);
  EXPECT_EQ(r.u32(), 5u);
  EXPECT_THROW(r.finish(), CheckpointFormatError);
}

TEST(CheckpointContainer, FileRoundTrip) {
  CheckpointWriter w;
  w.f64(6.25);
  const std::vector<std::uint8_t> sealed =
      w.seal(rs::core::kLcpCheckpointKind);
  const std::string path = ::testing::TempDir() + "/rs_checkpoint.bin";
  rs::core::write_checkpoint_file(path, sealed);
  EXPECT_EQ(rs::core::read_checkpoint_file(path), sealed);
}

// ---------------------------------------------------------------------------
// Crash-safe file writes (temp -> fsync -> atomic rename)
// ---------------------------------------------------------------------------

TEST(CheckpointFile, AtomicWriteLeavesNoTempAndOverwriteStaysValid) {
  CheckpointWriter w1;
  w1.u32(1);
  const std::vector<std::uint8_t> first =
      w1.seal(rs::core::kTrackerCheckpointKind);
  CheckpointWriter w2;
  w2.u32(2);
  w2.f64(9.5);
  const std::vector<std::uint8_t> second =
      w2.seal(rs::core::kTrackerCheckpointKind);

  const std::string path = ::testing::TempDir() + "/rs_atomic.ckpt";
  rs::core::write_checkpoint_file(path, first);
  // The staging file must be gone once the write returns.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(rs::core::read_checkpoint_file(path), first);

  // Overwriting replaces the content in one step; the old envelope never
  // coexists with a half-written new one under the same name.
  rs::core::write_checkpoint_file(path, second);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(rs::core::read_checkpoint_file(path), second);
}

TEST(CheckpointFile, TruncationAtEveryByteRejected) {
  // Simulates a crash mid-write under the *non*-atomic discipline: a file
  // holding any strict prefix of the envelope must be rejected by the
  // reader with a typed error — this is what the rename-into-place write
  // guarantees can only ever happen to the .tmp staging file.
  CheckpointWriter w;
  w.u32(77);
  w.f64(0.5);
  const std::vector<std::uint8_t> sealed =
      w.seal(rs::core::kLcpCheckpointKind);
  const std::string path = ::testing::TempDir() + "/rs_truncated.ckpt";
  for (std::size_t keep = 0; keep < sealed.size(); ++keep) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(sealed.data()),
                static_cast<std::streamsize>(keep));
    }
    const std::vector<std::uint8_t> bytes = rs::core::read_checkpoint_file(path);
    ASSERT_EQ(bytes.size(), keep);
    EXPECT_THROW(CheckpointReader(bytes, rs::core::kLcpCheckpointKind),
                 CheckpointError)
        << "keep=" << keep;
  }
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> sealed_payload(std::uint32_t kind, std::uint32_t v) {
  CheckpointWriter w;
  w.u32(v);
  return w.seal(kind);
}

TEST(CheckpointStore, MemoryRoundTripAndReplace) {
  rs::core::CheckpointStore store;
  EXPECT_FALSE(store.persistent());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.latest("a").has_value());

  const auto first = sealed_payload(rs::core::kTenantCheckpointKind, 1);
  const auto second = sealed_payload(rs::core::kTenantCheckpointKind, 2);
  store.put("a", first);
  EXPECT_TRUE(store.contains("a"));
  EXPECT_EQ(store.latest("a"), first);
  store.put("a", second);  // replaces, never appends
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.latest("a"), second);
  EXPECT_EQ(store.path_of("a"), "");  // memory-only
}

TEST(CheckpointStore, RejectsGarbageAndEmptyKeyAtPut) {
  rs::core::CheckpointStore store;
  EXPECT_THROW(store.put("k", {0xDE, 0xAD, 0xBE, 0xEF}),
               CheckpointFormatError);
  EXPECT_THROW(store.put("k", {}), CheckpointFormatError);
  EXPECT_THROW(store.put("", sealed_payload(rs::core::kLcpCheckpointKind, 1)),
               std::invalid_argument);
  EXPECT_EQ(store.size(), 0u);  // nothing recorded by the failed puts
}

TEST(CheckpointStore, DiskMirrorSurvivesProcessRestart) {
  const std::string dir = ::testing::TempDir() + "/rs_store_restart";
  std::filesystem::remove_all(dir);
  const auto bytes = sealed_payload(rs::core::kTenantCheckpointKind, 42);
  {
    rs::core::CheckpointStore store(dir);
    EXPECT_TRUE(store.persistent());
    store.put("tenant-0", bytes);
    EXPECT_TRUE(std::filesystem::exists(store.path_of("tenant-0")));
  }
  // A fresh store over the same directory — the "restarted process" — must
  // serve the previous save from disk.
  rs::core::CheckpointStore resumed(dir);
  EXPECT_FALSE(resumed.contains("tenant-0"));  // not in memory yet
  EXPECT_EQ(resumed.latest("tenant-0"), bytes);
  EXPECT_TRUE(resumed.contains("tenant-0"));  // cached on the way through
}

TEST(CheckpointStore, CorruptDiskFileYieldsNullopt) {
  const std::string dir = ::testing::TempDir() + "/rs_store_corrupt";
  std::filesystem::remove_all(dir);
  rs::core::CheckpointStore writer(dir);
  writer.put("t", sealed_payload(rs::core::kLcpCheckpointKind, 7));
  {
    std::ofstream out(writer.path_of("t"), std::ios::binary | std::ios::trunc);
    out << "not a checkpoint";
  }
  rs::core::CheckpointStore resumed(dir);
  EXPECT_FALSE(resumed.latest("t").has_value());  // latest *good* or nothing
}

TEST(CheckpointStore, SanitizeKeyKeepsSafeBytesOnly) {
  EXPECT_EQ(rs::core::CheckpointStore::sanitize_key("tenant-3.v1_X"),
            "tenant-3.v1_X");
  EXPECT_EQ(rs::core::CheckpointStore::sanitize_key("a/b c:d"), "a_b_c_d");
  const std::string dir = ::testing::TempDir() + "/rs_store_keys";
  rs::core::CheckpointStore store(dir);
  EXPECT_EQ(store.path_of("a/b"), dir + "/a_b.ckpt");
}

// ---------------------------------------------------------------------------
// ConvexPwl::from_parts
// ---------------------------------------------------------------------------

TEST(ConvexPwlParts, RoundTripReproducesShapeAndValues) {
  const rs::core::AffineAbsCost cost(1.5, 3.0, 0.25);
  const std::optional<ConvexPwl> form = cost.as_convex_pwl(10);
  ASSERT_TRUE(form.has_value());
  const ConvexPwl rebuilt = ConvexPwl::from_parts(
      form->lo(), form->hi(), form->value_lo(), form->first_slope(),
      form->slope_increments());
  EXPECT_TRUE(rebuilt.same_shape(*form));
  for (int x = -1; x <= 11; ++x) {
    EXPECT_EQ(rebuilt.value_at(x), form->value_at(x)) << "x=" << x;
  }
}

TEST(ConvexPwlParts, RejectsBrokenInvariants) {
  EXPECT_THROW(ConvexPwl::from_parts(3, 2, 0.0, 0.0, {}),
               std::invalid_argument);
  EXPECT_THROW(ConvexPwl::from_parts(0, 4, std::nan(""), 0.0, {}),
               std::invalid_argument);
  EXPECT_THROW(ConvexPwl::from_parts(0, 4, 0.0, rs::util::kInf, {}),
               std::invalid_argument);
  // Point domain with a slope.
  EXPECT_THROW(ConvexPwl::from_parts(2, 2, 0.0, 1.0, {}),
               std::invalid_argument);
  // Increment at the domain edge / outside.
  EXPECT_THROW(ConvexPwl::from_parts(0, 4, 0.0, 1.0, {{0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(ConvexPwl::from_parts(0, 4, 0.0, 1.0, {{4, 1.0}}),
               std::invalid_argument);
  // Non-positive / non-finite increments (concavity or rubbish).
  EXPECT_THROW(ConvexPwl::from_parts(0, 4, 0.0, 1.0, {{2, -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(ConvexPwl::from_parts(0, 4, 0.0, 1.0, {{2, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(ConvexPwl::from_parts(0, 4, 0.0, 1.0, {{2, std::nan("")}}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// WorkFunctionTracker
// ---------------------------------------------------------------------------

// Advances `full` and `split` in lockstep after restoring `split` from a
// snapshot taken at `split_at`, asserting bitwise-equal bounds and chat
// values at every remaining slot.
void expect_tracker_resume_bitwise(const Problem& p, Backend backend,
                                   int split_at) {
  WorkFunctionTracker full(p.max_servers(), p.beta(), backend);
  WorkFunctionTracker warm(p.max_servers(), p.beta(), backend);
  for (int t = 1; t <= split_at; ++t) {
    full.advance(p.f(t));
    warm.advance(p.f(t));
  }
  const std::vector<std::uint8_t> bytes = warm.snapshot();
  // The restored tracker continues; `warm` is abandoned (the "crash").
  WorkFunctionTracker resumed = WorkFunctionTracker::restore(bytes);
  EXPECT_EQ(resumed.tau(), split_at);
  for (int t = split_at + 1; t <= p.horizon(); ++t) {
    full.advance(p.f(t));
    resumed.advance(p.f(t));
    ASSERT_EQ(resumed.x_lower(), full.x_lower()) << "t=" << t;
    ASSERT_EQ(resumed.x_upper(), full.x_upper()) << "t=" << t;
    for (int x = 0; x <= p.max_servers(); ++x) {
      ASSERT_EQ(resumed.chat_lower(x), full.chat_lower(x))
          << "t=" << t << " x=" << x;
      ASSERT_EQ(resumed.chat_upper(x), full.chat_upper(x))
          << "t=" << t << " x=" << x;
    }
  }
}

TEST(TrackerCheckpoint, DenseResumeBitwise) {
  const Problem p = table_problem(9, 1.75, 40, 11);
  for (int split : {1, 7, 20, 39}) {
    expect_tracker_resume_bitwise(p, Backend::kDense, split);
  }
}

TEST(TrackerCheckpoint, PwlResumeBitwise) {
  const Problem p = hinge_problem(12, 2.5, 40, 12);
  for (int split : {1, 7, 20, 39}) {
    expect_tracker_resume_bitwise(p, Backend::kPwl, split);
  }
}

TEST(TrackerCheckpoint, AutoResumeBitwise) {
  const Problem p = hinge_problem(12, 2.5, 40, 13);
  for (int split : {1, 20}) {
    expect_tracker_resume_bitwise(p, Backend::kAuto, split);
  }
}

TEST(TrackerCheckpoint, FreshTrackerSnapshotRestores) {
  const Problem p = hinge_problem(6, 1.5, 10, 14);
  WorkFunctionTracker fresh(p.max_servers(), p.beta(), Backend::kAuto);
  WorkFunctionTracker resumed = WorkFunctionTracker::restore(fresh.snapshot());
  EXPECT_EQ(resumed.tau(), 0);
  WorkFunctionTracker reference(p.max_servers(), p.beta(), Backend::kAuto);
  for (int t = 1; t <= p.horizon(); ++t) {
    reference.advance(p.f(t));
    resumed.advance(p.f(t));
    ASSERT_EQ(resumed.x_lower(), reference.x_lower()) << "t=" << t;
    ASSERT_EQ(resumed.x_upper(), reference.x_upper()) << "t=" << t;
  }
}

// Snapshot taken *inside* a constant run replayed via advance_repeated: the
// resumed tracker finishes the run and the bounds match the uninterrupted
// replay bitwise (the PWL shape fixpoint pins bounds exactly; dense skips
// nothing).  Chat values may differ at ULP level across a resume-split
// fixpoint jump, so only bounds (and hence schedules) are pinned here.
void expect_repeated_resume_bounds(Backend backend) {
  const int m = 10;
  const double beta = 2.0;
  const auto cost = std::make_shared<rs::core::AffineAbsCost>(1.0, 6.0, 0.5);
  const int run = 24;

  WorkFunctionTracker full(m, beta, backend);
  std::vector<int> xl_full(run), xu_full(run);
  full.advance_repeated(*cost, run, xl_full, xu_full);

  for (int split : {1, 3, 12, 23}) {
    WorkFunctionTracker warm(m, beta, backend);
    std::vector<int> xl(run), xu(run);
    warm.advance_repeated(*cost, split,
                          std::span<int>(xl.data(), static_cast<std::size_t>(split)),
                          std::span<int>(xu.data(), static_cast<std::size_t>(split)));
    WorkFunctionTracker resumed = WorkFunctionTracker::restore(warm.snapshot());
    ASSERT_EQ(resumed.tau(), split);
    const int rest = run - split;
    resumed.advance_repeated(
        *cost, rest,
        std::span<int>(xl.data() + split, static_cast<std::size_t>(rest)),
        std::span<int>(xu.data() + split, static_cast<std::size_t>(rest)));
    EXPECT_EQ(resumed.tau(), run);
    for (int i = 0; i < run; ++i) {
      ASSERT_EQ(xl[static_cast<std::size_t>(i)],
                xl_full[static_cast<std::size_t>(i)])
          << "backend=" << static_cast<int>(backend) << " split=" << split
          << " i=" << i;
      ASSERT_EQ(xu[static_cast<std::size_t>(i)],
                xu_full[static_cast<std::size_t>(i)])
          << "backend=" << static_cast<int>(backend) << " split=" << split
          << " i=" << i;
    }
  }
}

TEST(TrackerCheckpoint, MidAdvanceRepeatedResumeDense) {
  expect_repeated_resume_bounds(Backend::kDense);
}

TEST(TrackerCheckpoint, MidAdvanceRepeatedResumePwl) {
  expect_repeated_resume_bounds(Backend::kPwl);
}

TEST(TrackerCheckpoint, EveryBitFlipRejectedTyped) {
  const Problem p = hinge_problem(8, 2.0, 12, 15);
  WorkFunctionTracker pwl(p.max_servers(), p.beta(), Backend::kPwl);
  WorkFunctionTracker dense(p.max_servers(), p.beta(), Backend::kDense);
  for (int t = 1; t <= 5; ++t) {
    pwl.advance(p.f(t));
    dense.advance(p.f(t));
  }
  for (const WorkFunctionTracker* tracker : {&pwl, &dense}) {
    const std::vector<std::uint8_t> bytes = tracker->snapshot();
    for (std::uint64_t bit = 0; bit < bytes.size() * 8; ++bit) {
      const std::vector<std::uint8_t> bad = corrupt_bit(bytes, bit);
      EXPECT_THROW(WorkFunctionTracker::restore(bad), CheckpointError)
          << "bit=" << bit;
    }
    for (std::size_t keep = 0; keep < bytes.size(); keep += 7) {
      EXPECT_THROW(WorkFunctionTracker::restore(truncate_bytes(bytes, keep)),
                   CheckpointError)
          << "keep=" << keep;
    }
  }
}

// ---------------------------------------------------------------------------
// Lcp sessions: kill-and-resume across the whole zoo
// ---------------------------------------------------------------------------

rs::scenario::ZooParams zoo_params() {
  rs::scenario::ZooParams params;
  params.servers = 16;
  params.horizon = 192;
  params.slots_per_day = 96;
  params.peak = 11.0;
  params.quantize_levels = 10;
  params.adversary_eps = 0.25;
  return params;
}

// Replays `p` through an Lcp session, crashing at `split` (snapshot ->
// destroy -> restore into a brand-new session) and returns the schedule,
// per-step bounds, and cost.
struct SessionRun {
  rs::core::Schedule schedule;
  std::vector<int> lower;
  std::vector<int> upper;
  double cost = 0.0;
};

SessionRun run_lcp_with_crash(const Problem& p, Backend backend,
                              int split /* 0 = uninterrupted */) {
  const OnlineContext context{p.max_servers(), p.beta()};
  SessionRun run;
  auto session = std::make_unique<Lcp>(backend);
  session->reset(context);
  std::vector<std::uint8_t> bytes;
  for (int t = 1; t <= p.horizon(); ++t) {
    if (split != 0 && t == split + 1) {
      bytes = session->snapshot();
      session.reset();  // the crash
      session = std::make_unique<Lcp>(backend);
      session->restore(context, bytes);
    }
    const rs::core::CostPtr f = p.f_ptr(t);
    run.schedule.push_back(session->decide(f, {}));
    run.lower.push_back(session->last_lower());
    run.upper.push_back(session->last_upper());
  }
  run.cost = rs::core::total_cost(p, run.schedule);
  return run;
}

TEST(LcpCheckpoint, KillAndResumeBitwiseAcrossZooAndBackends) {
  const std::vector<rs::scenario::Scenario> zoo =
      rs::scenario::make_zoo(zoo_params(), 2026);
  for (const rs::scenario::Scenario& scenario : zoo) {
    SCOPED_TRACE(scenario.name);
    const Problem& p = scenario.problem;
    const bool pwl_ok = rs::core::admits_compact_pwl(p);
    for (Backend backend : {Backend::kDense, Backend::kPwl, Backend::kAuto}) {
      if (backend == Backend::kPwl && !pwl_ok) continue;
      SCOPED_TRACE(static_cast<int>(backend));
      const SessionRun clean = run_lcp_with_crash(p, backend, 0);
      for (int split : {1, p.horizon() / 3, p.horizon() - 1}) {
        const SessionRun crashed = run_lcp_with_crash(p, backend, split);
        ASSERT_EQ(crashed.schedule, clean.schedule) << "split=" << split;
        ASSERT_EQ(crashed.lower, clean.lower) << "split=" << split;
        ASSERT_EQ(crashed.upper, clean.upper) << "split=" << split;
        ASSERT_EQ(crashed.cost, clean.cost) << "split=" << split;
      }
    }
  }
}

TEST(LcpCheckpoint, RestoreRejectsMismatchedTarget) {
  const Problem p = hinge_problem(10, 2.0, 20, 16);
  Lcp session(Backend::kAuto);
  session.reset(OnlineContext{10, 2.0});
  for (int t = 1; t <= 10; ++t) session.decide(p.f_ptr(t), {});
  const std::vector<std::uint8_t> bytes = session.snapshot();

  Lcp target(Backend::kAuto);
  EXPECT_THROW(target.restore(OnlineContext{11, 2.0}, bytes),
               CheckpointMismatchError);  // wrong m
  EXPECT_THROW(target.restore(OnlineContext{10, 2.5}, bytes),
               CheckpointMismatchError);  // wrong beta
  Lcp wrong_backend(Backend::kDense);
  EXPECT_THROW(wrong_backend.restore(OnlineContext{10, 2.0}, bytes),
               CheckpointMismatchError);  // wrong session backend
  // A tracker checkpoint is not a session checkpoint.
  WorkFunctionTracker tracker(10, 2.0, Backend::kDense);
  EXPECT_THROW(target.restore(OnlineContext{10, 2.0}, tracker.snapshot()),
               CheckpointFormatError);
  // After all those rejections the target must still be usable.
  target.restore(OnlineContext{10, 2.0}, bytes);
  EXPECT_EQ(target.last_lower(), session.last_lower());
  EXPECT_EQ(target.last_upper(), session.last_upper());
}

TEST(LcpCheckpoint, CorruptedSessionBytesRejected) {
  const Problem p = table_problem(6, 1.5, 12, 17);
  Lcp session(Backend::kDense);
  session.reset(OnlineContext{6, 1.5});
  for (int t = 1; t <= 8; ++t) session.decide(p.f_ptr(t), {});
  const std::vector<std::uint8_t> bytes = session.snapshot();
  Lcp target(Backend::kDense);
  for (std::uint64_t bit = 0; bit < bytes.size() * 8; bit += 5) {
    EXPECT_THROW(
        target.restore(OnlineContext{6, 1.5}, corrupt_bit(bytes, bit)),
        CheckpointError)
        << "bit=" << bit;
  }
}

// ---------------------------------------------------------------------------
// WindowedLcp: mid-window resume
// ---------------------------------------------------------------------------

SessionRun run_windowed_with_crash(const Problem& p, Backend backend,
                                   int window, int split) {
  const OnlineContext context{p.max_servers(), p.beta()};
  // Materialize the cost sequence once so lookahead spans are trivial.
  std::vector<rs::core::CostPtr> costs;
  costs.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) costs.push_back(p.f_ptr(t));

  SessionRun run;
  auto session = std::make_unique<WindowedLcp>(backend);
  session->reset(context);
  for (int t = 1; t <= p.horizon(); ++t) {
    if (split != 0 && t == split + 1) {
      const std::vector<std::uint8_t> bytes = session->snapshot();
      session.reset();
      session = std::make_unique<WindowedLcp>(backend);
      session->restore(context, bytes);
    }
    const std::size_t begin = static_cast<std::size_t>(t);
    const std::size_t count =
        std::min(static_cast<std::size_t>(window), costs.size() - begin);
    run.schedule.push_back(session->decide(
        costs[begin - 1],
        std::span<const rs::core::CostPtr>(costs.data() + begin, count)));
    run.lower.push_back(session->last_lower());
    run.upper.push_back(session->last_upper());
  }
  run.cost = rs::core::total_cost(p, run.schedule);
  return run;
}

TEST(WindowedLcpCheckpoint, MidWindowResumeBitwise) {
  const int window = 5;
  const Problem hinge = hinge_problem(10, 2.0, 48, 18);
  const Problem table = table_problem(8, 1.5, 48, 19);
  struct Case {
    const Problem* p;
    Backend backend;
  };
  for (const Case& c : {Case{&hinge, Backend::kAuto},
                        Case{&hinge, Backend::kPwl},
                        Case{&table, Backend::kDense}}) {
    SCOPED_TRACE(static_cast<int>(c.backend));
    const SessionRun clean = run_windowed_with_crash(*c.p, c.backend, window, 0);
    // Splits chosen so the prediction window straddles the crash point
    // (every t in [split+1, split+window] was "seen" as lookahead before
    // the crash and is re-revealed after restore with a cold form cache).
    for (int split : {1, 20, c.p->horizon() - 2}) {
      const SessionRun crashed =
          run_windowed_with_crash(*c.p, c.backend, window, split);
      ASSERT_EQ(crashed.schedule, clean.schedule) << "split=" << split;
      ASSERT_EQ(crashed.lower, clean.lower) << "split=" << split;
      ASSERT_EQ(crashed.upper, clean.upper) << "split=" << split;
      ASSERT_EQ(crashed.cost, clean.cost) << "split=" << split;
    }
  }
}

TEST(WindowedLcpCheckpoint, RestoreRejectsMismatchedTarget) {
  const Problem p = hinge_problem(10, 2.0, 20, 20);
  WindowedLcp session(Backend::kAuto);
  session.reset(OnlineContext{10, 2.0});
  std::vector<rs::core::CostPtr> costs;
  for (int t = 1; t <= p.horizon(); ++t) costs.push_back(p.f_ptr(t));
  for (int t = 1; t <= 10; ++t) {
    session.decide(costs[static_cast<std::size_t>(t - 1)],
                   std::span<const rs::core::CostPtr>(costs.data() + t,
                                                      std::min(3, 20 - t)));
  }
  const std::vector<std::uint8_t> bytes = session.snapshot();
  WindowedLcp target(Backend::kAuto);
  EXPECT_THROW(target.restore(OnlineContext{9, 2.0}, bytes),
               CheckpointMismatchError);
  EXPECT_THROW(target.restore(OnlineContext{10, 1.0}, bytes),
               CheckpointMismatchError);
  WindowedLcp wrong_backend(Backend::kDense);
  EXPECT_THROW(wrong_backend.restore(OnlineContext{10, 2.0}, bytes),
               CheckpointMismatchError);
  Lcp not_windowed(Backend::kAuto);
  EXPECT_THROW(not_windowed.restore(OnlineContext{10, 2.0}, bytes),
               CheckpointFormatError);  // kind tag mismatch
}

}  // namespace
