// Batch solver engine and workspace arenas.
//
// The engine's contract: batch outcomes are bit-identical to sequential
// solo solves for every solver kind and generator family, deterministic
// under any thread count, and — after one warm-up batch — allocation-free
// out of the per-thread workspace arenas.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "rightsizer/rightsizer.hpp"

namespace {

using rs::core::DenseProblem;
using rs::core::Problem;
using rs::core::Schedule;
using rs::engine::BatchResult;
using rs::engine::SolveJob;
using rs::engine::SolverEngine;
using rs::engine::SolverKind;

const SolverKind kAllKinds[] = {SolverKind::kDpCost, SolverKind::kDpSchedule,
                                SolverKind::kLcp, SolverKind::kLowMemory};

// A small fleet of instances across every generator family, plus
// FunctionCost-wrapped copies that have no convex-PWL form: the engine's
// automatic backend selection must serve both (PWL path without tables /
// dense path with shared tables) in one batch.
std::vector<Problem> fleet_instances() {
  std::vector<Problem> instances;
  std::uint64_t seed = 71;
  for (rs::workload::InstanceFamily family :
       rs::workload::all_instance_families()) {
    rs::util::Rng rng(seed++);
    instances.push_back(
        rs::workload::random_instance(rng, family, 13, 9, 2.0));
    rs::util::Rng rng2(seed++);
    instances.push_back(
        rs::workload::random_instance(rng2, family, 6, 4, 1.5));
  }
  {
    rs::util::Rng rng(seed++);
    const Problem p = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kConvexTable, 9, 6, 2.0);
    std::vector<rs::core::CostPtr> opaque;
    for (int t = 1; t <= p.horizon(); ++t) {
      opaque.push_back(std::make_shared<rs::core::FunctionCost>(
          [f = p.f_ptr(t)](int x) { return f->at(x); }, "opaque"));
    }
    instances.emplace_back(p.max_servers(), p.beta(), std::move(opaque));
  }
  return instances;
}

std::vector<SolveJob> fleet_jobs(const std::vector<Problem>& instances) {
  std::vector<SolveJob> jobs;
  for (const Problem& p : instances) {
    for (SolverKind kind : kAllKinds) {
      jobs.push_back(SolveJob{&p, nullptr, kind});
    }
  }
  return jobs;
}

// The sequential solo reference for one job, through the library's plain
// entry points (streaming per-instance paths) under the engine's
// documented backend selection: DP jobs on instances admitting a compact
// convex-PWL form run Backend::kConvexAuto; LCP replays select the same
// way on their own inside the work-function tracker.
rs::engine::SolveOutcome solo_solve(const Problem& p, SolverKind kind) {
  const bool admits = rs::core::admits_compact_pwl(p);
  const rs::offline::DpSolver dp(
      admits ? rs::offline::DpSolver::Backend::kConvexAuto
             : rs::offline::DpSolver::Backend::kDense);
  rs::engine::SolveOutcome outcome;
  switch (kind) {
    case SolverKind::kDpCost:
      outcome.cost = dp.solve_cost(p);
      break;
    case SolverKind::kDpSchedule: {
      const rs::offline::OfflineResult r = dp.solve(p);
      outcome.cost = r.cost;
      outcome.schedule = r.schedule;
      break;
    }
    case SolverKind::kLcp: {
      rs::online::Lcp lcp;
      outcome.schedule = rs::online::run_online(lcp, p);
      outcome.cost = rs::core::total_cost(p, outcome.schedule);
      break;
    }
    case SolverKind::kLowMemory: {
      const rs::offline::OfflineResult r =
          rs::offline::LowMemorySolver(
              admits ? rs::offline::LowMemorySolver::Backend::kConvexAuto
                     : rs::offline::LowMemorySolver::Backend::kDense)
              .solve(p);
      outcome.cost = r.cost;
      outcome.schedule = r.schedule;
      break;
    }
    case SolverKind::kDeltaResolve:
      // Delta jobs carry an edit; this solo reference never issues one.
      ADD_FAILURE() << "solo_solve has no kDeltaResolve reference";
      break;
  }
  return outcome;
}

}  // namespace

// --- workspace ---------------------------------------------------------------

TEST(Workspace, ReusesBuffersAfterWarmUp) {
  rs::util::Workspace workspace;
  const auto base = workspace.stats();
  {
    auto a = workspace.borrow<double>(100);
    EXPECT_EQ(a.size(), 100u);
    a[0] = 1.0;
    a[99] = 2.0;
  }
  auto warm = workspace.stats();
  EXPECT_EQ(warm.borrows - base.borrows, 1u);
  EXPECT_EQ(warm.growths - base.growths, 1u);
  EXPECT_EQ(warm.pooled_buffers, 1u);
  {
    auto b = workspace.borrow<double>(80);  // fits in the pooled buffer
    EXPECT_EQ(b.size(), 80u);
  }
  auto after = workspace.stats();
  EXPECT_EQ(after.borrows - warm.borrows, 1u);
  EXPECT_EQ(after.growths, warm.growths) << "warm borrow must not allocate";
}

TEST(Workspace, BestFitAcrossMixedShapes) {
  rs::util::Workspace workspace;
  {
    auto small = workspace.borrow<double>(10);
    auto large = workspace.borrow<double>(1000);
  }
  const auto warm = workspace.stats();
  EXPECT_EQ(warm.pooled_buffers, 2u);
  {
    // Both shapes again, in the opposite order: best-fit keeps each shape
    // on its own pooled buffer, so neither borrow grows.
    auto large = workspace.borrow<double>(1000);
    auto small = workspace.borrow<double>(10);
  }
  EXPECT_EQ(workspace.stats().growths, warm.growths);
}

TEST(Workspace, ClearReleasesPooledBuffers) {
  rs::util::Workspace workspace;
  { auto a = workspace.borrow<std::int32_t>(64); }
  EXPECT_GT(workspace.stats().pooled_buffers, 0u);
  workspace.clear();
  EXPECT_EQ(workspace.stats().pooled_buffers, 0u);
  EXPECT_EQ(workspace.stats().pooled_bytes, 0u);
}

// --- batch equivalence -------------------------------------------------------

TEST(SolverEngine, BatchMatchesSoloSolvesAcrossKindsAndFamilies) {
  const std::vector<Problem> instances = fleet_instances();
  const std::vector<SolveJob> jobs = fleet_jobs(instances);

  const SolverEngine engine;  // global pool, shared dense tables
  const BatchResult batch = engine.run(jobs);
  ASSERT_EQ(batch.outcomes.size(), jobs.size());
  EXPECT_EQ(batch.stats.jobs, jobs.size());
  // Tables are materialized only for instances that do not admit the
  // convex-PWL backend; PWL-served jobs are counted in pwl_backed, and
  // each admitting instance is converted exactly once per batch (one
  // as_convex_pwl per slot, shared by all four of its jobs).
  std::size_t expected_tables = 0;
  std::size_t expected_pwl_jobs = 0;
  std::size_t expected_conversions = 0;
  for (const Problem& p : instances) {
    if (rs::core::admits_compact_pwl(p)) {
      expected_pwl_jobs += 4;  // every kind, kLowMemory included
      expected_conversions += static_cast<std::size_t>(p.horizon());
    } else {
      ++expected_tables;
    }
  }
  EXPECT_GT(expected_tables, 0u);   // the fleet covers the dense path...
  EXPECT_GT(expected_pwl_jobs, 0u);  // ...and the PWL path
  EXPECT_EQ(batch.stats.dense_tables_built, expected_tables);
  EXPECT_EQ(batch.stats.pwl_backed, expected_pwl_jobs);
  EXPECT_EQ(batch.stats.pwl_conversions, expected_conversions);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const rs::engine::SolveOutcome expected =
        solo_solve(*jobs[i].problem, jobs[i].kind);
    EXPECT_EQ(batch.outcomes[i].cost, expected.cost) << "job " << i;
    EXPECT_EQ(batch.outcomes[i].schedule, expected.schedule) << "job " << i;
  }
}

TEST(SolverEngine, DeterministicUnderThreadCountVariation) {
  const std::vector<Problem> instances = fleet_instances();
  const std::vector<SolveJob> jobs = fleet_jobs(instances);

  const BatchResult inline_run = SolverEngine({.threads = 1}).run(jobs);
  for (std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    const SolverEngine engine({.threads = threads});
    const BatchResult parallel_run = engine.run(jobs);
    ASSERT_EQ(parallel_run.outcomes.size(), inline_run.outcomes.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(parallel_run.outcomes[i].cost, inline_run.outcomes[i].cost)
          << "threads=" << threads << " job " << i;
      EXPECT_EQ(parallel_run.outcomes[i].schedule,
                inline_run.outcomes[i].schedule)
          << "threads=" << threads << " job " << i;
    }
  }
}

TEST(SolverEngine, SharedDenseAndNaiveModesAgree) {
  const std::vector<Problem> instances = fleet_instances();
  const std::vector<SolveJob> jobs = fleet_jobs(instances);
  const BatchResult shared = SolverEngine({.threads = 1}).run(jobs);
  const BatchResult naive =
      SolverEngine({.threads = 1, .share_dense = false}).run(jobs);
  EXPECT_EQ(naive.stats.dense_tables_built, 0u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(shared.outcomes[i].cost, naive.outcomes[i].cost) << "job " << i;
    EXPECT_EQ(shared.outcomes[i].schedule, naive.outcomes[i].schedule)
        << "job " << i;
  }
}

TEST(SolverEngine, AcceptsPreBuiltDenseTables) {
  rs::util::Rng rng(5);
  const Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kQuadratic, 11, 7, 2.0);
  const auto dense = std::make_shared<const DenseProblem>(p);
  const std::vector<SolveJob> jobs = {
      SolveJob{nullptr, dense, SolverKind::kDpCost},
      SolveJob{nullptr, dense, SolverKind::kLcp},
  };
  const BatchResult batch = SolverEngine({.threads = 1}).run(jobs);
  EXPECT_EQ(batch.stats.dense_tables_built, 0u);  // caller's table reused
  EXPECT_EQ(batch.outcomes[0].cost, rs::offline::DpSolver().solve_cost(p));
  EXPECT_EQ(batch.outcomes[1].schedule, rs::online::run_lcp_dense(*dense));
}

TEST(SolverEngine, ValidatesJobs) {
  const SolverEngine engine({.threads = 1});
  EXPECT_THROW(engine.run({SolveJob{}}), std::invalid_argument);
  rs::util::Rng rng(6);
  const Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kConvexTable, 4, 3, 1.0);
  const auto dense = std::make_shared<const DenseProblem>(p);
  // kLowMemory cannot run from a table alone.
  EXPECT_THROW(
      engine.run({SolveJob{nullptr, dense, SolverKind::kLowMemory}}),
      std::invalid_argument);
  // Lazy tables materialize unsynchronized; only the inline engine may run
  // them.
  const auto lazy =
      std::make_shared<const DenseProblem>(p, DenseProblem::Mode::kLazy);
  EXPECT_THROW(SolverEngine({.threads = 2})
                   .run({SolveJob{nullptr, lazy, SolverKind::kDpCost}}),
               std::invalid_argument);
  const rs::engine::BatchResult lazy_inline =
      engine.run({SolveJob{nullptr, lazy, SolverKind::kDpCost}});
  EXPECT_EQ(lazy_inline.outcomes[0].cost, rs::offline::DpSolver().solve_cost(p));
  // Empty batches are legal and report zero throughput.
  const BatchResult empty = engine.run(std::vector<SolveJob>{});
  EXPECT_TRUE(empty.outcomes.empty());
  EXPECT_EQ(empty.stats.jobs, 0u);
}

TEST(SolverEngine, HandlesEdgeInstances) {
  const Problem empty(4, 1.0, {});
  const Problem tiny = rs::core::make_table_problem(0, 1.0, {{2.0}, {3.0}});
  const std::vector<SolveJob> jobs = {
      SolveJob{&empty, nullptr, SolverKind::kDpSchedule},
      SolveJob{&tiny, nullptr, SolverKind::kDpSchedule},
      SolveJob{&tiny, nullptr, SolverKind::kLcp},
  };
  const BatchResult batch = SolverEngine({.threads = 1}).run(jobs);
  EXPECT_EQ(batch.outcomes[0].cost, 0.0);
  EXPECT_TRUE(batch.outcomes[0].schedule.empty());
  EXPECT_EQ(batch.outcomes[1].cost, 5.0);
  EXPECT_EQ(batch.outcomes[1].schedule, Schedule({0, 0}));
  EXPECT_EQ(batch.outcomes[2].schedule, Schedule({0, 0}));
}

// --- warm arenas -------------------------------------------------------------

TEST(SolverEngine, SecondBatchRunsAllocationFree) {
  const std::vector<Problem> instances = fleet_instances();
  const std::vector<SolveJob> jobs = fleet_jobs(instances);

  // Inline engine: every solve runs on this thread, so the warm-arena
  // property is deterministic (no dependence on which pool worker got
  // which job).
  const SolverEngine engine({.threads = 1});
  const BatchResult cold = engine.run(jobs);   // warms the arenas
  const BatchResult warm = engine.run(jobs);   // must not allocate scratch
  EXPECT_EQ(warm.stats.workspace_growths, 0u)
      << "second batch re-grew workspace buffers (cold batch grew "
      << cold.stats.workspace_growths << ")";
  EXPECT_TRUE(warm.stats.allocation_free());
  // And it still produces the same answers.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(warm.outcomes[i].cost, cold.outcomes[i].cost);
  }
}

// --- harness integration -----------------------------------------------------

TEST(SolverEngine, ForEachReportsBatchStats) {
  const SolverEngine engine({.threads = 1});
  std::vector<int> hits(16, 0);
  rs::engine::BatchStats stats;
  engine.for_each(hits.size(), [&hits](std::size_t i) { ++hits[i]; }, &stats);
  EXPECT_EQ(stats.jobs, hits.size());
  EXPECT_EQ(stats.threads, 1u);
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_THROW(engine.for_each(1, nullptr), std::invalid_argument);
}

TEST(SolverEngine, ForEachTimedFillsPerItemSeconds) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const SolverEngine engine({.threads = threads});
    std::vector<int> hits(12, 0);
    std::vector<double> seconds(12, -1.0);
    rs::engine::BatchStats stats;
    engine.for_each_timed(
        hits.size(), [&hits](std::size_t i) { ++hits[i]; }, seconds, &stats);
    EXPECT_EQ(stats.jobs, hits.size());
    for (int h : hits) EXPECT_EQ(h, 1);
    for (double s : seconds) EXPECT_GE(s, 0.0);  // every slot written
  }
  const SolverEngine engine({.threads = 1});
  std::vector<double> seconds(2, 0.0);
  EXPECT_THROW(engine.for_each_timed(2, nullptr, seconds),
               std::invalid_argument);
  EXPECT_THROW(
      engine.for_each_timed(4, [](std::size_t) {}, seconds),
      std::invalid_argument);  // seconds span shorter than n
}

TEST(SweepRunner, EngineRunRecordsStatsAndMatchesDefaultRun) {
  const auto points = rs::analysis::grid({{"i", {"0", "1", "2", "3"}}});
  const auto eval = [](std::size_t i) {
    return rs::analysis::SweepRow{{"twice", 2.0 * static_cast<double>(i)}};
  };
  rs::analysis::SweepRunner plain(points, eval);
  plain.run(false);
  rs::analysis::SweepRunner engined(points, eval);
  engined.run(SolverEngine({.threads = 2}));
  ASSERT_EQ(plain.rows().size(), engined.rows().size());
  for (std::size_t i = 0; i < plain.rows().size(); ++i) {
    EXPECT_EQ(plain.rows()[i], engined.rows()[i]);
  }
  EXPECT_EQ(engined.stats().jobs, points.size());
  EXPECT_EQ(engined.stats().threads, 2u);
  EXPECT_EQ(plain.stats().jobs, points.size());
}

TEST(MonteCarlo, DenseOverloadMatchesProblemOverloadAndReportsBatch) {
  rs::util::Rng rng(17);
  const Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kQuadratic, 12, 8, 2.0);
  const auto trial = [](std::uint64_t seed) {
    return static_cast<double>(seed % 7) + 1.0;
  };
  const auto a = rs::analysis::monte_carlo(p, 32, 9, trial);
  const DenseProblem dense(p);
  const auto b = rs::analysis::monte_carlo(dense, 32, 9, trial);
  EXPECT_EQ(a.optimal_cost, b.optimal_cost);
  EXPECT_EQ(a.cost.mean, b.cost.mean);
  EXPECT_EQ(a.batch.jobs, 32u);
  // Lazy tables cannot be shared across concurrent trials.
  const DenseProblem lazy(p, DenseProblem::Mode::kLazy);
  EXPECT_THROW(rs::analysis::monte_carlo(lazy, 4, 1, trial),
               std::invalid_argument);
}

TEST(MeasureRatio, SharedDenseOverloadMatches) {
  rs::util::Rng rng(23);
  const Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kConvexTable, 15, 10, 2.0);
  rs::online::Lcp lcp_a;
  const rs::analysis::RatioReport plain = rs::analysis::measure_ratio(lcp_a, p);
  const DenseProblem dense(p);
  rs::online::Lcp lcp_b;
  const rs::analysis::RatioReport shared =
      rs::analysis::measure_ratio(lcp_b, p, dense);
  EXPECT_EQ(plain.algorithm_cost, shared.algorithm_cost);
  EXPECT_EQ(plain.optimal_cost, shared.optimal_cost);
  EXPECT_EQ(plain.ratio, shared.ratio);
}
