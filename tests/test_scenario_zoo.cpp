// Trace-zoo tests: structural validity of every scenario kind plus the
// paper invariants measured on them — LCP within 3·OPT (Theorem 2),
// randomized rounding within 2·OPT in expectation (Theorem 3), and the
// Theorem-4 adversarial scenario pushing the measured LCP ratio toward 3
// as ε shrinks.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"
#include "online/online_algorithm.hpp"
#include "online/randomized_rounding.hpp"
#include "scenario/rle.hpp"
#include "scenario/trace_zoo.hpp"
#include "util/rng.hpp"

namespace {

using rs::scenario::Scenario;
using rs::scenario::ScenarioKind;
using rs::scenario::ZooParams;

ZooParams small_params() {
  ZooParams params;
  params.servers = 20;
  params.horizon = 288;
  params.slots_per_day = 96;
  params.peak = 14.0;
  params.quantize_levels = 12;
  params.adversary_eps = 0.25;
  return params;
}

TEST(TraceZoo, EveryKindIsWellFormedAndCompresses) {
  const ZooParams params = small_params();
  const std::vector<Scenario> zoo = rs::scenario::make_zoo(params, 2024);
  ASSERT_EQ(zoo.size(), rs::scenario::all_scenario_kinds().size());
  for (const Scenario& scenario : zoo) {
    SCOPED_TRACE(scenario.name);
    EXPECT_EQ(scenario.name, rs::scenario::to_string(scenario.kind));
    EXPECT_GE(scenario.trace.horizon(), 1);
    EXPECT_EQ(scenario.rle.horizon(), scenario.trace.horizon());
    EXPECT_EQ(scenario.problem.horizon(), scenario.trace.horizon());
    // Genuine run-length compression: quantization/holds must collapse the
    // trace to well under one run per slot.
    EXPECT_LT(scenario.rle.run_count(), scenario.trace.horizon() / 2);
    EXPECT_GE(scenario.rle.run_count(), 1);
    // The instance is a valid convex problem slot by slot.
    scenario.problem.validate();
    // Expansion shares one cost object per run.
    const rs::scenario::RleProblem regrouped =
        rs::scenario::rle_compress(scenario.problem);
    EXPECT_EQ(regrouped.run_count(), scenario.rle.run_count());
  }
}

TEST(TraceZoo, DeterministicInSeed) {
  const ZooParams params = small_params();
  for (ScenarioKind kind : rs::scenario::all_scenario_kinds()) {
    const Scenario a = rs::scenario::make_scenario(kind, params, 7);
    const Scenario b = rs::scenario::make_scenario(kind, params, 7);
    EXPECT_EQ(a.trace.lambda, b.trace.lambda)
        << rs::scenario::to_string(kind);
  }
  // Stochastic kinds decorrelate across seeds.
  const Scenario s1 =
      rs::scenario::make_scenario(ScenarioKind::kDiurnalWeekly, params, 1);
  const Scenario s2 =
      rs::scenario::make_scenario(ScenarioKind::kDiurnalWeekly, params, 2);
  EXPECT_NE(s1.trace.lambda, s2.trace.lambda);
}

TEST(TraceZoo, QuantizeTraceSnapsToGrid) {
  const rs::workload::Trace trace{{0.0, 0.11, 5.55, 9.99, 12.0}};
  const rs::workload::Trace q =
      rs::scenario::quantize_trace(trace, 10.0, 10);
  ASSERT_EQ(q.horizon(), 5);
  for (double value : q.lambda) {
    const double index = value / 1.0;
    EXPECT_DOUBLE_EQ(index, std::round(index));
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 10.0);  // values above peak clamp to the top level
  }
  // Idempotent: quantizing a quantized trace is the identity.
  EXPECT_EQ(rs::scenario::quantize_trace(q, 10.0, 10).lambda, q.lambda);
  EXPECT_THROW(rs::scenario::quantize_trace(trace, 0.0, 10),
               std::invalid_argument);
  EXPECT_THROW(rs::scenario::quantize_trace(trace, 10.0, 0),
               std::invalid_argument);
}

TEST(TraceZoo, ParameterValidation) {
  ZooParams params = small_params();
  params.servers = 0;
  EXPECT_THROW(
      rs::scenario::make_scenario(ScenarioKind::kDiurnalWeekly, params, 1),
      std::invalid_argument);
  params = small_params();
  params.pareto_alpha = 1.0;
  EXPECT_THROW(
      rs::scenario::make_scenario(ScenarioKind::kHeavyTail, params, 1),
      std::invalid_argument);
  params = small_params();
  params.adversary_eps = 0.0;
  EXPECT_THROW(
      rs::scenario::make_scenario(ScenarioKind::kAdversarial, params, 1),
      std::invalid_argument);
}

// Theorem 2 on the zoo: LCP pays at most 3·OPT on every scenario.
TEST(ZooPaperInvariants, LcpWithinThreeTimesOpt) {
  const ZooParams params = small_params();
  for (std::uint64_t seed : {11ull, 22ull}) {
    for (const Scenario& scenario : rs::scenario::make_zoo(params, seed)) {
      SCOPED_TRACE(scenario.name);
      const double opt =
          rs::offline::DpSolver().solve_cost(scenario.problem);
      const double lcp = rs::core::total_cost(
          scenario.problem, rs::scenario::replay_lcp(scenario.rle));
      ASSERT_GT(opt, 0.0);
      EXPECT_GE(lcp, opt - 1e-9);
      EXPECT_LE(lcp, 3.0 * opt + 1e-6);
    }
  }
}

// Theorem 3 on the zoo: randomized rounding is 2-competitive in
// expectation.  Sample mean over independent rounding seeds, with slack
// for Monte-Carlo noise.
TEST(ZooPaperInvariants, RandomizedRoundingTwiceOptInExpectation) {
  ZooParams params = small_params();
  params.horizon = 192;
  const Scenario scenario =
      rs::scenario::make_scenario(ScenarioKind::kDiurnalWeekly, params, 5);
  const double opt = rs::offline::DpSolver().solve_cost(scenario.problem);
  ASSERT_GT(opt, 0.0);
  rs::util::KahanSum total;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    rs::online::RandomizedRounding rounding(
        static_cast<std::uint64_t>(trial) + 1);
    total.add(rs::core::total_cost(
        scenario.problem, rs::online::run_online(rounding, scenario.problem)));
  }
  const double mean = total.value() / trials;
  EXPECT_LE(mean, 2.0 * opt * 1.10);  // 10% Monte-Carlo slack
  EXPECT_GE(mean, opt - 1e-9);
}

// Theorem 4 on the zoo: shrinking ε pushes the measured LCP ratio
// monotonically toward (and never past) 3.
TEST(ZooPaperInvariants, AdversarialRatioApproachesThree) {
  std::vector<double> ratios;
  // Along the designed horizon T = ⌈1/ε²⌉ + 1 the measured ratio climbs
  // 2.0 → 2.4 → 2.8 → 3.0 over this ε sequence; smaller ε oscillates
  // below 3 with horizon-truncation effects (partial adversary cycles),
  // so the monotone claim is pinned on this range.
  for (double eps : {0.5, 0.4, 0.3, 0.25}) {
    ZooParams params = small_params();
    params.adversary_eps = eps;
    // The Theorem-4 construction needs ~1/ε² slots to exhaust its budget.
    params.horizon =
        static_cast<int>(std::ceil(1.0 / (eps * eps))) + 1;
    const Scenario scenario =
        rs::scenario::make_scenario(ScenarioKind::kAdversarial, params, 0);
    const double opt = rs::offline::DpSolver().solve_cost(scenario.problem);
    const double lcp = rs::core::total_cost(
        scenario.problem, rs::scenario::replay_lcp(scenario.rle));
    ASSERT_GT(opt, 0.0);
    ratios.push_back(lcp / opt);
  }
  for (std::size_t i = 1; i < ratios.size(); ++i) {
    EXPECT_GT(ratios[i], ratios[i - 1]) << "ratios not monotone at " << i;
  }
  EXPECT_GT(ratios.back(), 2.9);
  for (double ratio : ratios) EXPECT_LE(ratio, 3.0 + 1e-9);
}

}  // namespace
