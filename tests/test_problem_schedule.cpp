// Tests for Problem construction/validation and the schedule cost
// decompositions of Sections 1, 2.3 and 3.2, including the identities the
// competitive analysis relies on:
//   C^L_τ(X) = C^U_τ(X) + β·x_τ                      (eq. 14)
//   S^L_τ(X) = S^U_τ(X) + β·x_τ
//   C_sym(X) = C(X) for closed schedules.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"

namespace {

using namespace rs::core;
using rs::util::kInf;

Problem tiny_problem() {
  // T = 3, m = 2, beta = 1.5
  return make_table_problem(2, 1.5,
                            {{3.0, 1.0, 2.0},
                             {0.0, 1.0, 4.0},
                             {2.0, 1.0, 0.5}});
}

TEST(Problem, BasicAccessors) {
  const Problem p = tiny_problem();
  EXPECT_EQ(p.horizon(), 3);
  EXPECT_EQ(p.max_servers(), 2);
  EXPECT_DOUBLE_EQ(p.beta(), 1.5);
  EXPECT_DOUBLE_EQ(p.cost_at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(p.cost_at(3, 2), 0.5);
  EXPECT_DOUBLE_EQ(p.f(2).at(2), 4.0);
}

TEST(Problem, ArgumentValidation) {
  EXPECT_THROW(Problem(-1, 1.0, {}), std::invalid_argument);
  EXPECT_THROW(Problem(1, 0.0, {}), std::invalid_argument);
  EXPECT_THROW(Problem(1, -1.0, {}), std::invalid_argument);
  EXPECT_THROW(Problem(1, 1.0, {nullptr}), std::invalid_argument);

  const Problem p = tiny_problem();
  EXPECT_THROW(p.f(0), std::out_of_range);
  EXPECT_THROW(p.f(4), std::out_of_range);
  EXPECT_THROW(p.cost_at(1, -1), std::out_of_range);
  EXPECT_THROW(p.cost_at(1, 3), std::out_of_range);
}

TEST(Problem, ValidateAcceptsConvexInstance) {
  EXPECT_NO_THROW(tiny_problem().validate());
}

TEST(Problem, ValidateRejectsNonConvexSlot) {
  const Problem p = make_table_problem(2, 1.0, {{0.0, 2.0, 3.0}});
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Problem, PrefixTruncates) {
  const Problem p = tiny_problem();
  const Problem q = p.prefix(2);
  EXPECT_EQ(q.horizon(), 2);
  EXPECT_DOUBLE_EQ(q.cost_at(2, 1), 1.0);
  EXPECT_THROW(p.prefix(4), std::out_of_range);
}

TEST(Problem, MakeTableProblemRejectsBadArity) {
  EXPECT_THROW(make_table_problem(2, 1.0, {{1.0, 2.0}}),
               std::invalid_argument);
}

TEST(Problem, MaterializePreservesCosts) {
  const Problem p = tiny_problem();
  const Problem q = materialize(p);
  for (int t = 1; t <= p.horizon(); ++t) {
    for (int x = 0; x <= p.max_servers(); ++x) {
      EXPECT_DOUBLE_EQ(p.cost_at(t, x), q.cost_at(t, x));
    }
  }
}

TEST(Schedule, FeasibilityChecks) {
  const Problem p = tiny_problem();
  EXPECT_TRUE(is_within_bounds(p, {0, 1, 2}));
  EXPECT_FALSE(is_within_bounds(p, {0, 1}));      // wrong length
  EXPECT_FALSE(is_within_bounds(p, {0, 3, 0}));   // above m
  EXPECT_FALSE(is_within_bounds(p, {-1, 0, 0}));  // below 0
  EXPECT_TRUE(is_feasible(p, {1, 1, 1}));
}

TEST(Schedule, InfeasibleStateDetected) {
  const Problem p =
      make_table_problem(1, 1.0, {{kInf, 0.0}, {0.0, 0.0}});
  EXPECT_FALSE(is_feasible(p, {0, 0}));
  EXPECT_TRUE(is_feasible(p, {1, 0}));
}

TEST(Schedule, OperatingCostSums) {
  const Problem p = tiny_problem();
  const Schedule x = {1, 2, 0};
  EXPECT_DOUBLE_EQ(operating_cost(p, x), 1.0 + 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(operating_cost(p, x, 2), 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(operating_cost(p, x, 0), 0.0);
}

TEST(Schedule, SwitchingCostsMatchHandComputation) {
  const Problem p = tiny_problem();  // beta = 1.5
  const Schedule x = {1, 2, 0};
  // ups: 0->1 (1), 1->2 (1); downs: 2->0 (2)
  EXPECT_DOUBLE_EQ(switching_cost_up(p, x), 1.5 * 2.0);
  EXPECT_DOUBLE_EQ(switching_cost_down(p, x), 1.5 * 2.0);
  EXPECT_DOUBLE_EQ(switching_cost_up(p, x, 1), 1.5);
  EXPECT_DOUBLE_EQ(switching_cost_down(p, x, 2), 0.0);
}

TEST(Schedule, TotalCostMatchesEquationOne) {
  const Problem p = tiny_problem();
  const Schedule x = {1, 2, 0};
  EXPECT_DOUBLE_EQ(total_cost(p, x), (1.0 + 4.0 + 2.0) + 1.5 * 2.0);
}

TEST(Schedule, Equation14HoldsOnRandomSchedules) {
  rs::util::Rng rng(7);
  const Problem p = tiny_problem();
  for (int trial = 0; trial < 100; ++trial) {
    Schedule x(3);
    for (int& v : x) v = static_cast<int>(rng.uniform_int(0, 2));
    for (int tau = 1; tau <= 3; ++tau) {
      const double x_tau = x[static_cast<std::size_t>(tau - 1)];
      EXPECT_NEAR(switching_cost_up(p, x, tau),
                  switching_cost_down(p, x, tau) + p.beta() * x_tau, 1e-12);
      EXPECT_NEAR(cost_up_to(p, x, tau),
                  cost_down_up_to(p, x, tau) + p.beta() * x_tau, 1e-12);
    }
  }
}

TEST(Schedule, SymmetricCostEqualsStandardCostOnClosedSchedules) {
  // C_sym charges β/2 per unit movement both ways including the final
  // power-down; since x_0 = x_{T+1} = 0 total up-moves equal down-moves.
  rs::util::Rng rng(11);
  const Problem p = tiny_problem();
  for (int trial = 0; trial < 100; ++trial) {
    Schedule x(3);
    for (int& v : x) v = static_cast<int>(rng.uniform_int(0, 2));
    EXPECT_NEAR(total_cost(p, x), total_cost_symmetric(p, x), 1e-12);
  }
}

TEST(Schedule, IntervalCostMatchesSection23Definition) {
  const Problem p = tiny_problem();
  const Schedule x = {1, 2, 0};
  // C_[0,T] = C(X) (f_0 := 0, and switching from x_0 = 0 counted)
  EXPECT_DOUBLE_EQ(interval_cost(p, x, 0, 3), total_cost(p, x));
  // C_[2,3]: f_2(2) + f_3(0) + β(x_3 - x_2)^+ = 4 + 2 + 0
  EXPECT_DOUBLE_EQ(interval_cost(p, x, 2, 3), 6.0);
  // Degenerate single-slot interval has no switching term.
  EXPECT_DOUBLE_EQ(interval_cost(p, x, 2, 2), 4.0);
  EXPECT_THROW(interval_cost(p, x, 2, 1), std::out_of_range);
  EXPECT_THROW(interval_cost(p, x, 0, 4), std::out_of_range);
}

TEST(Schedule, IntervalsTile) {
  // C(X) = C_[0,k] + β(x_{k+1}-x_k)^+ ... decomposition used in Lemma 3's
  // proof: splitting at any k and re-adding the boundary switching cost
  // reconstructs the total.
  const Problem p = tiny_problem();
  const Schedule x = {2, 1, 2};
  for (int k = 1; k < 3; ++k) {
    const int xk = x[static_cast<std::size_t>(k - 1)];
    const int xk1 = x[static_cast<std::size_t>(k)];
    const double boundary = p.beta() * std::max(0, xk1 - xk);
    EXPECT_NEAR(total_cost(p, x),
                interval_cost(p, x, 0, k) + boundary +
                    (interval_cost(p, x, k + 1, 3) -
                     0.0),  // interval [k+1,3] excludes boundary switch
                1e-12)
        << "k=" << k;
  }
}

TEST(Schedule, FractionalCostsInterpolate) {
  const Problem p = tiny_problem();
  const FractionalSchedule x = {0.5, 1.5, 0.0};
  // f̄_1(0.5) = 2.0, f̄_2(1.5) = 2.5, f̄_3(0) = 2.0
  EXPECT_DOUBLE_EQ(operating_cost(p, x), 2.0 + 2.5 + 2.0);
  EXPECT_DOUBLE_EQ(switching_cost_up(p, x), 1.5 * 1.5);
  EXPECT_DOUBLE_EQ(total_cost(p, x), 6.5 + 2.25);
}

TEST(Schedule, FractionalCostAgreesWithIntegralOnIntegerPoints) {
  rs::util::Rng rng(13);
  const Problem p = tiny_problem();
  for (int trial = 0; trial < 50; ++trial) {
    Schedule x(3);
    for (int& v : x) v = static_cast<int>(rng.uniform_int(0, 2));
    const FractionalSchedule xf = to_fractional(x);
    EXPECT_NEAR(total_cost(p, x), total_cost(p, xf), 1e-12);
    EXPECT_NEAR(total_cost_symmetric(p, x), total_cost_symmetric(p, xf),
                1e-12);
  }
}

TEST(Schedule, FloorCeilSchedules) {
  const FractionalSchedule x = {0.2, 1.0, 1.8};
  EXPECT_EQ(floor_schedule(x), (Schedule{0, 1, 1}));
  EXPECT_EQ(ceil_schedule(x), (Schedule{1, 1, 2}));
}

TEST(Schedule, LengthMismatchThrows) {
  const Problem p = tiny_problem();
  EXPECT_THROW(total_cost(p, Schedule{0, 1}), std::invalid_argument);
  EXPECT_THROW(operating_cost(p, Schedule{0, 1, 2, 0}),
               std::invalid_argument);
}

TEST(Schedule, InfeasibleScheduleHasInfiniteCost) {
  const Problem p =
      make_table_problem(1, 2.0, {{kInf, 1.0}, {0.0, 0.0}});
  EXPECT_TRUE(std::isinf(total_cost(p, Schedule{0, 0})));
  EXPECT_TRUE(std::isfinite(total_cost(p, Schedule{1, 0})));
}

}  // namespace
