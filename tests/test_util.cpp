// Unit tests for the util substrate: RNG determinism and distribution
// sanity, thread pool, CSV round-trips, table rendering, math helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rs::util;

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 4);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    ASSERT_GE(u, 2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 40000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.5, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.5, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  const int n = 40000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PoissonSmallAndLargeMean) {
  Rng rng(19);
  const int n = 20000;
  double small_sum = 0.0, large_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    small_sum += static_cast<double>(rng.poisson(3.0));
    large_sum += static_cast<double>(rng.poisson(100.0));
  }
  EXPECT_NEAR(small_sum / n, 3.0, 0.1);
  EXPECT_NEAR(large_sum / n, 100.0, 1.0);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng parent(23);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 5);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([]() { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(Csv, RowRoundTripWithQuoting) {
  CsvRow row = {"plain", "with,comma", "with\"quote", "multi\nline"};
  const std::string line = csv_format_row(row);
  const CsvRow parsed = csv_parse_line(line);
  // Embedded newline survives quoting in format; single-line parse treats it
  // as part of the field only if quoted (we formatted it quoted).
  ASSERT_EQ(parsed.size(), row.size());
  EXPECT_EQ(parsed[0], "plain");
  EXPECT_EQ(parsed[1], "with,comma");
  EXPECT_EQ(parsed[2], "with\"quote");
}

TEST(Csv, ParseSkipsCommentsAndBlankLines) {
  const CsvTable table =
      csv_parse("# comment\na,b\n\n1,2\n3,4\n", /*has_header=*/true);
  ASSERT_EQ(table.header.size(), 2u);
  EXPECT_EQ(table.header[0], "a");
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "4");
}

TEST(Csv, FormatThenParseIsIdentity) {
  CsvTable table;
  table.header = {"t", "lambda"};
  table.rows = {{"1", "0.25"}, {"2", "0.75"}};
  const CsvTable round = csv_parse(csv_format(table), true);
  EXPECT_EQ(round.header, table.header);
  EXPECT_EQ(round.rows, table.rows);
}

TEST(Csv, FileRoundTrip) {
  CsvTable table;
  table.header = {"x"};
  table.rows = {{"1"}, {"2"}};
  const std::string path = ::testing::TempDir() + "/rs_csv_test.csv";
  csv_write_file(path, table);
  const CsvTable round = csv_read_file(path, true);
  EXPECT_EQ(round.rows, table.rows);
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(csv_read_file("/nonexistent/definitely/missing.csv", true),
               std::runtime_error);
}

TEST(TextTable, AlignsColumnsAndCountsRows) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "2.5"});
  EXPECT_EQ(table.rows(), 2u);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
}

TEST(TextTable, MarkdownHasSeparator) {
  TextTable table({"a", "b"});
  table.add_row({"1", "2"});
  const std::string md = table.to_string(/*markdown=*/true);
  EXPECT_NE(md.find("|--"), std::string::npos);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumFormatsSpecials) {
  EXPECT_EQ(TextTable::num(kInf), "inf");
  EXPECT_EQ(TextTable::num(-kInf), "-inf");
  EXPECT_EQ(TextTable::num(1.25, 2), "1.25");
}

TEST(MathUtil, ProjectMatchesPaperDefinition) {
  // [x]^b_a = max{a, min{b, x}}
  EXPECT_EQ(project(5, 0, 10), 5);
  EXPECT_EQ(project(-1, 0, 10), 0);
  EXPECT_EQ(project(11, 0, 10), 10);
  EXPECT_THROW(project(1, 3, 2), std::invalid_argument);
}

TEST(MathUtil, PosOperator) {
  EXPECT_EQ(pos(3), 3);
  EXPECT_EQ(pos(-3), 0);
  EXPECT_EQ(pos(0.0), 0.0);
}

TEST(MathUtil, CeilStarMatchesSection4Definition) {
  // ⌈x⌉* = min{n in Z : n > x}; for integers n, ⌈n⌉* = n+1.
  EXPECT_EQ(ceil_star(2.0), 3);
  EXPECT_EQ(ceil_star(2.5), 3);
  EXPECT_EQ(ceil_star(-0.5), 0);
  EXPECT_EQ(ceil_star(0.0), 1);
}

TEST(MathUtil, FracInUnitInterval) {
  EXPECT_DOUBLE_EQ(frac(2.75), 0.75);
  EXPECT_DOUBLE_EQ(frac(3.0), 0.0);
}

TEST(MathUtil, KahanSumBeatsNaiveOnTinyTerms) {
  KahanSum sum;
  sum.add(1.0);
  for (int i = 0; i < 10000000; ++i) sum.add(1e-16);
  EXPECT_NEAR(sum.value(), 1.0 + 1e-9, 1e-12);
}

TEST(MathUtil, KahanSumInfinity) {
  KahanSum sum;
  sum.add(1.0);
  sum.add(kInf);
  EXPECT_TRUE(std::isinf(sum.value()));
}

TEST(MathUtil, SummarizeStats) {
  const SampleStats stats = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_NEAR(stats.stddev, 1.29099, 1e-4);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_GT(stats.ci95_half_width, 0.0);
}

TEST(MathUtil, SummarizeEmpty) {
  const SampleStats stats = summarize({});
  EXPECT_EQ(stats.count, 0u);
}

TEST(Cli, ParsesAllFlagForms) {
  const char* argv[] = {"prog", "--a=1", "--b=2", "--flag", "pos1"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("a", 0), 1);
  EXPECT_EQ(args.get_int("b", 0), 2);
  EXPECT_TRUE(args.get_bool("flag", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(args.get_double("a", 0.0), 1.0);
}

TEST(Cli, BadBooleanThrows) {
  const char* argv[] = {"prog", "--x=maybe"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_bool("x", false), std::invalid_argument);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_GE(sw.milliseconds(), sw.seconds());  // same instant, scaled
}

}  // namespace
