// Tests for the Section-4 randomized rounding: support invariant, exact
// Lemma-18 marginals via distribution evolution, Lemmas 19/20 (expected
// cost equals fractional cost) by exact computation and Monte Carlo, and
// the Theorem-3 end-to-end algorithm.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"
#include "online/level_flow.hpp"
#include "online/randomized_rounding.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::online;
using rs::core::FractionalSchedule;
using rs::core::Problem;
using rs::core::Schedule;
using rs::util::ceil_star;
using rs::util::frac;
using rs::workload::InstanceFamily;

FractionalSchedule random_trajectory(rs::util::Rng& rng, int T, double m,
                                     double max_step) {
  FractionalSchedule x(static_cast<std::size_t>(T));
  double value = 0.0;
  for (int t = 0; t < T; ++t) {
    value = rs::util::project(value + rng.uniform(-max_step, max_step), 0.0, m);
    x[static_cast<std::size_t>(t)] = value;
  }
  return x;
}

TEST(RoundingChain, SupportInvariant) {
  // x_t is always ⌊x̄_t⌋ or ⌈x̄_t⌉*.
  rs::util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const FractionalSchedule x = random_trajectory(rng, 50, 5.0, 1.7);
    const Schedule rounded = round_schedule(x, 1000 + trial);
    for (std::size_t t = 0; t < x.size(); ++t) {
      const int lower = static_cast<int>(std::floor(x[t]));
      const int upper = static_cast<int>(ceil_star(x[t]));
      EXPECT_TRUE(rounded[t] == lower || rounded[t] == upper)
          << "t=" << t << " xbar=" << x[t] << " x=" << rounded[t];
    }
  }
}

TEST(RoundingChain, DeterministicGivenSeed) {
  rs::util::Rng rng(12);
  const FractionalSchedule x = random_trajectory(rng, 40, 3.0, 0.8);
  EXPECT_EQ(round_schedule(x, 7), round_schedule(x, 7));
}

TEST(RoundingChain, IntegralInputPassesThrough) {
  const FractionalSchedule x = {1.0, 3.0, 0.0, 2.0};
  const Schedule rounded = round_schedule(x, 5);
  EXPECT_EQ(rounded, (Schedule{1, 3, 0, 2}));
}

TEST(RoundingChain, RejectsNegativeState) {
  RoundingChain chain{rs::util::Rng(1)};
  EXPECT_THROW(chain.step(-0.25), std::invalid_argument);
}

// Lemma 18 by exact distribution evolution: the chain state is supported on
// {⌊x̄_t⌋, ⌈x̄_t⌉*}; evolving the two-point distribution through the
// transition rule must keep Pr[upper] = frac(x̄_t).
TEST(RoundingChain, Lemma18ExactMarginals) {
  rs::util::Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    // Mix small (within-cell) and large (multi-cell) moves.
    const double max_step = trial % 2 == 0 ? 0.6 : 2.9;
    const FractionalSchedule x = random_trajectory(rng, 60, 6.0, max_step);
    double previous_fractional = 0.0;
    double p_upper_prev = 0.0;  // Pr[x_{t-1} = upper state of x̄_{t-1}]
    int prev_lower = 0;
    int prev_upper = 1;  // states of the chain at t-1 (x̄_0 = 0)
    for (std::size_t t = 0; t < x.size(); ++t) {
      const int lower = static_cast<int>(std::floor(x[t]));
      const int upper = static_cast<int>(ceil_star(x[t]));
      // Transition from each support point of the previous distribution.
      const double from_lower =
          rounding_upper_probability(prev_lower, previous_fractional, x[t]);
      const double from_upper =
          rounding_upper_probability(prev_upper, previous_fractional, x[t]);
      const double p_upper =
          (1.0 - p_upper_prev) * from_lower + p_upper_prev * from_upper;
      ASSERT_NEAR(p_upper, frac(x[t]), 1e-9)
          << "t=" << t << " xbar=" << x[t] << " prev=" << previous_fractional;
      previous_fractional = x[t];
      p_upper_prev = p_upper;
      prev_lower = lower;
      prev_upper = upper;
    }
  }
}

// Lemmas 19/20 by Monte Carlo: expected operating and switching costs of
// the rounded schedule match the fractional schedule's costs.
TEST(RoundingChain, Lemma19And20ExpectedCosts) {
  rs::util::Rng rng(14);
  const int T = 30;
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kConvexTable, T, 6, 1.3);
  const FractionalSchedule xbar = random_trajectory(rng, T, 6.0, 1.4);

  const double frac_operating = rs::core::operating_cost(p, xbar);
  const double frac_switching = rs::core::switching_cost_up(p, xbar);

  const int samples = 60000;
  double sum_operating = 0.0;
  double sum_switching = 0.0;
  for (int s = 0; s < samples; ++s) {
    const Schedule x = round_schedule(xbar, 50000 + static_cast<std::uint64_t>(s));
    sum_operating += rs::core::operating_cost(p, x);
    sum_switching += rs::core::switching_cost_up(p, x);
  }
  const double mean_operating = sum_operating / samples;
  const double mean_switching = sum_switching / samples;
  EXPECT_NEAR(mean_operating, frac_operating,
              0.02 * std::max(1.0, frac_operating));
  EXPECT_NEAR(mean_switching, frac_switching,
              0.03 * std::max(1.0, frac_switching));
}

TEST(RandomizedRounding, RequiresReset) {
  RandomizedRounding alg(1);
  const auto f = std::make_shared<rs::core::AffineAbsCost>(1.0, 0.0);
  EXPECT_THROW(alg.decide(f, {}), std::logic_error);
  EXPECT_THROW(RandomizedRounding(nullptr, 1), std::invalid_argument);
}

TEST(RandomizedRounding, TracksFractionalWithinOneUnit) {
  rs::util::Rng rng(15);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 40, 8, 1.0);
  RandomizedRounding alg(99);
  const Schedule x = run_online(alg, p);
  LevelFlow flow;
  const FractionalSchedule xbar = run_online(flow, p);
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_LE(std::fabs(static_cast<double>(x[t]) - xbar[t]), 1.0 + 1e-12);
  }
}

TEST(RandomizedRounding, Theorem3ExpectedRatioAtMostTwo) {
  // E[C(X)] = C(X̄) <= 2·OPT(P̄) = 2·OPT(P).  Check the expectation over
  // seeds against 2·OPT with a small slack for sampling noise.
  rs::util::Rng rng(16);
  const rs::offline::DpSolver dp;
  for (int trial = 0; trial < 6; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(5, 30));
    const int m = static_cast<int>(rng.uniform_int(1, 6));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.4, 2.0));
    const double optimal = dp.solve_cost(p);
    if (!(optimal > 1e-6)) continue;

    // Exact expectation: E[C] equals the fractional cost (Lemmas 19/20).
    LevelFlow flow;
    const FractionalSchedule xbar = run_online(flow, p);
    const double expected_cost = rs::core::total_cost(p, xbar);
    EXPECT_LE(expected_cost, 2.0 * optimal + 1e-6) << "trial=" << trial;

    // Monte-Carlo confirmation through the online wrapper.
    const int samples = 400;
    double sum = 0.0;
    for (int s = 0; s < samples; ++s) {
      RandomizedRounding alg(static_cast<std::uint64_t>(trial) * 100000u + s);
      sum += rs::core::total_cost(p, run_online(alg, p));
    }
    const double mean = sum / samples;
    EXPECT_NEAR(mean, expected_cost, 0.15 * std::max(1.0, expected_cost));
  }
}

}  // namespace
