// Offline-solver correctness (Theorem 1 and Section 2 machinery).
//
// The central property: DP, graph shortest path, the Lemma-11 backward
// construction, and the paper's O(T log m) binary-search algorithm all
// return schedules of identical optimal cost, validated against brute force
// on small instances and against each other on parameterized sweeps over
// all instance families.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/schedule.hpp"
#include "core/transforms.hpp"
#include "offline/backward_solver.hpp"
#include "offline/binary_search_solver.hpp"
#include "offline/bounded_dp.hpp"
#include "offline/brute_force.hpp"
#include "offline/dp_solver.hpp"
#include "offline/graph_solver.hpp"
#include "offline/grid_continuous.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::offline;
using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::workload::InstanceFamily;

TEST(DpSolver, MatchesBruteForceOnTinyInstances) {
  rs::util::Rng rng(101);
  const BruteForceSolver brute;
  const DpSolver dp;
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    for (int trial = 0; trial < 15; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 5));
      const int m = static_cast<int>(rng.uniform_int(1, 4));
      const double beta = rng.uniform(0.1, 3.0);
      const Problem p =
          rs::workload::random_instance(rng, family, T, m, beta);
      const OfflineResult expected = brute.solve(p);
      const OfflineResult actual = dp.solve(p);
      ASSERT_NEAR(actual.cost, expected.cost, 1e-9)
          << rs::workload::family_name(family) << " T=" << T << " m=" << m;
      if (actual.feasible()) {
        EXPECT_NEAR(rs::core::total_cost(p, actual.schedule), actual.cost,
                    1e-9);
      }
    }
  }
}

TEST(DpSolver, CostOnlyAgreesWithFull) {
  rs::util::Rng rng(202);
  const DpSolver dp;
  for (int trial = 0; trial < 30; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 20));
    const int m = static_cast<int>(rng.uniform_int(1, 16));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.2, 4.0));
    EXPECT_NEAR(dp.solve(p).cost, dp.solve_cost(p), 1e-9);
  }
}

TEST(DpSolver, EmptyHorizon) {
  const Problem p(4, 1.0, {});
  const OfflineResult result = DpSolver().solve(p);
  EXPECT_TRUE(result.feasible());
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
  EXPECT_TRUE(result.schedule.empty());
}

TEST(DpSolver, SingleServerToggleInstance) {
  // beta = 2, alternating preference; optimum stays at one state.
  const Problem p = rs::core::make_table_problem(
      1, 2.0, {{0.0, 0.1}, {0.1, 0.0}, {0.0, 0.1}, {0.1, 0.0}});
  const OfflineResult result = DpSolver().solve(p);
  EXPECT_NEAR(result.cost, 0.2, 1e-12);  // stay at 0 (or 1 after one jump)
}

TEST(DpSolver, InfeasibleInstanceReported) {
  const Problem p = rs::core::make_table_problem(1, 1.0, {{kInf, kInf}});
  const OfflineResult result = DpSolver().solve(p);
  EXPECT_FALSE(result.feasible());
  EXPECT_TRUE(result.schedule.empty());
}

TEST(DpSolver, RespectsHardConstraints) {
  // Slot 1 requires x >= 1, slot 2 requires x >= 2 (inf prefixes).
  const Problem p = rs::core::make_table_problem(
      2, 1.0, {{kInf, 1.0, 2.0}, {kInf, kInf, 0.5}});
  const OfflineResult result = DpSolver().solve(p);
  ASSERT_TRUE(result.feasible());
  EXPECT_GE(result.schedule[0], 1);
  EXPECT_EQ(result.schedule[1], 2);
}

TEST(BruteForce, RejectsHugeInstances) {
  const Problem p = rs::core::make_table_problem(
      9, 1.0,
      std::vector<std::vector<double>>(
          10, std::vector<double>(10, 0.0)));
  EXPECT_THROW(BruteForceSolver().solve(p), std::invalid_argument);
}

TEST(BoundedDp, FullCandidatesEqualDp) {
  rs::util::Rng rng(303);
  const DpSolver dp;
  for (int trial = 0; trial < 20; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.2, 3.0));
    const std::vector<int> column = rs::core::multiples_of(1, m);
    const OfflineResult bounded = solve_bounded(
        p, std::vector<std::vector<int>>(static_cast<std::size_t>(T), column));
    EXPECT_NEAR(bounded.cost, dp.solve_cost(p), 1e-9);
  }
}

TEST(BoundedDp, RestrictedCandidatesAreUpperBound) {
  rs::util::Rng rng(404);
  const DpSolver dp;
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 8;
    const int T = static_cast<int>(rng.uniform_int(1, 10));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kQuadratic, T, m, 1.0);
    const OfflineResult restricted = solve_phi_restricted(p, 1);
    EXPECT_GE(restricted.cost, dp.solve_cost(p) - 1e-9);
    // Schedule really only uses multiples of 2.
    for (int state : restricted.schedule) EXPECT_EQ(state % 2, 0);
  }
}

TEST(BoundedDp, InputValidation) {
  const Problem p = rs::core::make_table_problem(2, 1.0, {{1.0, 0.0, 1.0}});
  EXPECT_THROW(solve_bounded(p, {}), std::invalid_argument);
  EXPECT_THROW(solve_bounded(p, {std::vector<int>{}}), std::invalid_argument);
  EXPECT_THROW(solve_bounded(p, {std::vector<int>{1, 0}}),
               std::invalid_argument);
  EXPECT_THROW(solve_bounded(p, {std::vector<int>{0, 3}}),
               std::invalid_argument);
}

TEST(BoundedDp, StatsCountWork) {
  const Problem p = rs::core::make_table_problem(
      2, 1.0, {{1.0, 0.0, 1.0}, {0.0, 1.0, 2.0}});
  BoundedDpStats stats;
  solve_bounded(p,
                {std::vector<int>{0, 1, 2}, std::vector<int>{0, 2}}, &stats);
  EXPECT_EQ(stats.function_evaluations, 3 + 2);
  EXPECT_EQ(stats.transitions_evaluated, 3 * 1 + 2 * 3);
}

TEST(PhiRestriction, MonotoneInK) {
  // Coarser restrictions can only cost more: OPT(P_0) <= OPT(P_1) <= ...
  rs::util::Rng rng(505);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, 8, 16, rng.uniform(0.5, 2.0));
    double previous = solve_phi_restricted(p, 0).cost;
    for (int k = 1; k <= 4; ++k) {
      const double current = solve_phi_restricted(p, k).cost;
      EXPECT_GE(current, previous - 1e-9) << "k=" << k;
      previous = current;
    }
  }
}

// --- parameterized cross-solver agreement -----------------------------------

struct CrossSolverParam {
  InstanceFamily family;
  int T;
  int m;
  double beta;
};

class CrossSolverTest
    : public ::testing::TestWithParam<CrossSolverParam> {};

TEST_P(CrossSolverTest, AllSolversAgreeOnOptimalCost) {
  const CrossSolverParam param = GetParam();
  rs::util::Rng rng(static_cast<std::uint64_t>(param.T) * 7919u +
                    static_cast<std::uint64_t>(param.m) * 104729u +
                    static_cast<std::uint64_t>(param.family));
  const DpSolver dp;
  const GraphSolver graph;
  const BackwardSolver backward;
  const BinarySearchSolver binary;
  for (int trial = 0; trial < 5; ++trial) {
    const Problem p = rs::workload::random_instance(
        rng, param.family, param.T, param.m, param.beta);
    const double expected = dp.solve_cost(p);
    EXPECT_NEAR(graph.solve(p).cost, expected, 1e-8) << "graph";
    EXPECT_NEAR(binary.solve(p).cost, expected, 1e-8) << "binary_search";
    // Lemma 11 applies to instances without hard constraints; with +inf
    // states the bound corridor can still be crossed, so skip backward for
    // the constrained family.
    if (param.family != InstanceFamily::kConstrained) {
      EXPECT_NEAR(backward.solve(p).cost, expected, 1e-8) << "backward";
    }
    // Returned schedules must price to their reported costs.
    const OfflineResult bs = binary.solve(p);
    if (bs.feasible()) {
      EXPECT_NEAR(rs::core::total_cost(p, bs.schedule), bs.cost, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossSolverTest,
    ::testing::Values(
        CrossSolverParam{InstanceFamily::kConvexTable, 1, 1, 1.0},
        CrossSolverParam{InstanceFamily::kConvexTable, 6, 4, 0.3},
        CrossSolverParam{InstanceFamily::kConvexTable, 12, 8, 1.0},
        CrossSolverParam{InstanceFamily::kConvexTable, 25, 16, 2.5},
        CrossSolverParam{InstanceFamily::kConvexTable, 40, 32, 5.0},
        CrossSolverParam{InstanceFamily::kQuadratic, 10, 7, 0.8},
        CrossSolverParam{InstanceFamily::kQuadratic, 30, 33, 1.7},
        CrossSolverParam{InstanceFamily::kQuadratic, 16, 64, 4.0},
        CrossSolverParam{InstanceFamily::kAffineAbs, 20, 5, 0.5},
        CrossSolverParam{InstanceFamily::kAffineAbs, 15, 24, 2.0},
        CrossSolverParam{InstanceFamily::kConstrained, 10, 12, 1.0},
        CrossSolverParam{InstanceFamily::kConstrained, 18, 31, 3.0},
        CrossSolverParam{InstanceFamily::kFlatRegions, 14, 9, 0.7},
        CrossSolverParam{InstanceFamily::kFlatRegions, 22, 40, 1.2},
        CrossSolverParam{InstanceFamily::kCapacityCapped, 12, 14, 0.9},
        CrossSolverParam{InstanceFamily::kCapacityCapped, 20, 37, 2.4}),
    [](const ::testing::TestParamInfo<CrossSolverParam>& info) {
      return rs::workload::family_name(info.param.family) + "_T" +
             std::to_string(info.param.T) + "_m" + std::to_string(info.param.m);
    });

TEST(BinarySearch, HandlesTinyM) {
  rs::util::Rng rng(606);
  const DpSolver dp;
  const BinarySearchSolver binary;
  for (int m : {1, 2, 3}) {
    for (int trial = 0; trial < 10; ++trial) {
      const Problem p = rs::workload::random_instance(
          rng, InstanceFamily::kConvexTable, 6, m, rng.uniform(0.3, 2.0));
      EXPECT_NEAR(binary.solve(p).cost, dp.solve_cost(p), 1e-9) << "m=" << m;
    }
  }
}

TEST(BinarySearch, ScheduleStaysWithinOriginalM) {
  rs::util::Rng rng(707);
  const BinarySearchSolver binary;
  for (int m : {3, 5, 6, 7, 9, 17, 33}) {
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kQuadratic, 12, m, 1.0);
    const OfflineResult result = binary.solve(p);
    ASSERT_TRUE(result.feasible());
    for (int state : result.schedule) {
      EXPECT_GE(state, 0);
      EXPECT_LE(state, m);
    }
  }
}

TEST(BinarySearch, IterationCountIsLogarithmic) {
  rs::util::Rng rng(808);
  const BinarySearchSolver binary;
  for (int log_m : {2, 4, 6, 8}) {
    const int m = 1 << log_m;
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kQuadratic, 10, m, 1.0);
    BinarySearchStats stats;
    binary.solve_with_stats(p, stats);
    EXPECT_EQ(stats.iterations, std::max(1, log_m - 1));
    // Work per iteration is <= 25 transitions per column.
    EXPECT_LE(stats.dp.transitions_evaluated,
              static_cast<std::int64_t>(stats.iterations) * 10 * 25 + 25);
  }
}

TEST(BinarySearch, FunctionEvaluationsAreOTlogM) {
  // The whole point of Theorem 1: the solver must not touch all T·m states.
  rs::util::Rng rng(909);
  const int T = 32;
  const int m = 1 << 12;
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, T, m, 1.0);
  BinarySearchStats stats;
  BinarySearchSolver().solve_with_stats(p, stats);
  // <= 5 evaluations per column per iteration, log2(m)-1 iterations.
  EXPECT_LE(stats.dp.function_evaluations,
            static_cast<std::int64_t>(5) * T * 11);
  EXPECT_LT(stats.dp.function_evaluations,
            static_cast<std::int64_t>(T) * (m + 1) / 4);
}

TEST(Backward, ProducesOptimalSchedule) {
  rs::util::Rng rng(111);
  const DpSolver dp;
  const BackwardSolver backward;
  for (InstanceFamily family :
       {InstanceFamily::kConvexTable, InstanceFamily::kQuadratic,
        InstanceFamily::kAffineAbs, InstanceFamily::kFlatRegions}) {
    for (int trial = 0; trial < 10; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 15));
      const int m = static_cast<int>(rng.uniform_int(1, 12));
      const Problem p = rs::workload::random_instance(
          rng, family, T, m, rng.uniform(0.2, 3.0));
      const OfflineResult result = backward.solve(p);
      EXPECT_NEAR(result.cost, dp.solve_cost(p), 1e-9)
          << rs::workload::family_name(family);
    }
  }
}

TEST(Backward, ScheduleWithinBounds) {
  rs::util::Rng rng(222);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 20, 10, 1.0);
  const BoundTrajectory bounds = compute_bounds(p);
  const Schedule x = backward_schedule(bounds);
  for (int t = 1; t <= 20; ++t) {
    EXPECT_GE(x[static_cast<std::size_t>(t - 1)],
              bounds.lower[static_cast<std::size_t>(t - 1)]);
    EXPECT_LE(x[static_cast<std::size_t>(t - 1)],
              bounds.upper[static_cast<std::size_t>(t - 1)]);
  }
}

TEST(GridContinuous, MatchesDiscreteOptimumOnIntegerGrid) {
  // Lemma 4: the continuous extension P̄ has an integral optimum, so the
  // grid optimum equals the discrete optimum for every q.
  rs::util::Rng rng(333);
  const DpSolver dp;
  for (int trial = 0; trial < 8; ++trial) {
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, 8, 5, rng.uniform(0.3, 2.0));
    const double discrete = dp.solve_cost(p);
    for (int q : {1, 2, 4}) {
      const ContinuousResult cont = solve_continuous_on_grid(p, q);
      EXPECT_NEAR(cont.cost, discrete, 1e-9) << "q=" << q;
    }
  }
}

TEST(GridContinuous, FloorAndCeilOfOptimumAreOptimal) {
  // Lemma 4 executable form: rounding a fractional optimal schedule down or
  // up preserves optimality.
  rs::util::Rng rng(444);
  const DpSolver dp;
  for (int trial = 0; trial < 8; ++trial) {
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, 7, 4, rng.uniform(0.3, 2.0));
    const ContinuousResult cont = solve_continuous_on_grid(p, 4);
    ASSERT_TRUE(cont.feasible());
    const double optimum = dp.solve_cost(p);
    const Schedule down = rs::core::floor_schedule(cont.schedule);
    const Schedule up = rs::core::ceil_schedule(cont.schedule);
    EXPECT_NEAR(rs::core::total_cost(p, down), optimum, 1e-9);
    EXPECT_NEAR(rs::core::total_cost(p, up), optimum, 1e-9);
  }
}

TEST(GridContinuous, RejectsBadResolution) {
  const Problem p = rs::core::make_table_problem(1, 1.0, {{0.0, 1.0}});
  EXPECT_THROW(solve_continuous_on_grid(p, 0), std::invalid_argument);
}

}  // namespace
