// Tests for the instance transforms of Sections 2.2/2.3 (power-of-two
// padding, Φ_k state restriction, Ψ_l rescaling), the Theorem-10 stretching,
// and the restricted-model reduction (eq. 2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "core/transforms.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"

namespace {

using namespace rs::core;
using rs::util::kInf;

TEST(NextPowerOfTwo, Values) {
  EXPECT_EQ(next_power_of_two(1), 1);
  EXPECT_EQ(next_power_of_two(2), 2);
  EXPECT_EQ(next_power_of_two(3), 4);
  EXPECT_EQ(next_power_of_two(64), 64);
  EXPECT_EQ(next_power_of_two(65), 128);
  EXPECT_THROW(next_power_of_two(0), std::invalid_argument);
}

TEST(Padding, KeepsInstanceWhenAlreadyPowerOfTwo) {
  const Problem p = make_table_problem(
      4, 1.0, {{4.0, 3.0, 2.0, 2.5, 3.0}, {1.0, 0.0, 1.0, 2.0, 3.0}});
  const PaddedProblem padded = pad_to_power_of_two(p);
  EXPECT_EQ(padded.problem.max_servers(), 4);
  EXPECT_EQ(padded.original_m, 4);
  EXPECT_DOUBLE_EQ(padded.problem.cost_at(1, 3), 2.5);
}

TEST(Padding, ExtendsToNextPowerOfTwoConvexly) {
  const Problem p =
      make_table_problem(5, 2.0, {{5.0, 3.0, 2.0, 2.0, 3.0, 5.0}});
  const PaddedProblem padded = pad_to_power_of_two(p);
  EXPECT_EQ(padded.problem.max_servers(), 8);
  // Original values preserved.
  for (int x = 0; x <= 5; ++x) {
    EXPECT_DOUBLE_EQ(padded.problem.cost_at(1, x), p.cost_at(1, x));
  }
  // Extension strictly increasing and convex overall.
  for (int x = 6; x <= 8; ++x) {
    EXPECT_GT(padded.problem.cost_at(1, x), padded.problem.cost_at(1, x - 1));
  }
  EXPECT_NO_THROW(padded.problem.validate());
}

TEST(Padding, OptimalNeverUsesPaddedStates) {
  // Brute-force check on a small instance: every schedule touching x > m is
  // strictly dominated by its clamped version.
  const Problem p =
      make_table_problem(3, 1.0, {{3.0, 1.0, 0.5, 2.0}, {2.0, 1.5, 1.0, 0.5}});
  const PaddedProblem padded = pad_to_power_of_two(p);
  const Problem& q = padded.problem;
  ASSERT_EQ(q.max_servers(), 4);
  for (int x1 = 0; x1 <= 4; ++x1) {
    for (int x2 = 0; x2 <= 4; ++x2) {
      if (x1 <= 3 && x2 <= 3) continue;
      const Schedule raw = {x1, x2};
      const Schedule clamped = {std::min(x1, 3), std::min(x2, 3)};
      EXPECT_GT(total_cost(q, raw), total_cost(q, clamped))
          << "x1=" << x1 << " x2=" << x2;
    }
  }
}

TEST(MultiplesOf, GeneratesMk) {
  EXPECT_EQ(multiples_of(4, 17), (std::vector<int>{0, 4, 8, 12, 16}));
  EXPECT_EQ(multiples_of(1, 3), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(multiples_of(8, 7), (std::vector<int>{0}));
  EXPECT_THROW(multiples_of(0, 4), std::invalid_argument);
}

TEST(PsiScale, CostPreservingCorrespondence) {
  // C_Q(X) = C_{Ψ_l(Q)}(X') for X' = X / 2^l (Section 2.3).
  rs::util::Rng rng(31);
  const int m = 16;
  std::vector<std::vector<double>> rows;
  for (int t = 0; t < 5; ++t) {
    std::vector<double> row(m + 1);
    const double center = rng.uniform(0.0, m);
    for (int x = 0; x <= m; ++x) row[x] = 0.5 * (x - center) * (x - center);
    rows.push_back(row);
  }
  const Problem p = make_table_problem(m, 1.25, rows);
  const Problem scaled = psi_scale(p, 2);
  EXPECT_EQ(scaled.max_servers(), 4);
  EXPECT_DOUBLE_EQ(scaled.beta(), 5.0);

  for (int trial = 0; trial < 20; ++trial) {
    Schedule x(5);
    for (int& v : x) v = 4 * static_cast<int>(rng.uniform_int(0, 4));
    Schedule x_scaled(5);
    for (int t = 0; t < 5; ++t) x_scaled[t] = x[t] / 4;
    EXPECT_NEAR(total_cost(p, x), total_cost(scaled, x_scaled), 1e-9);
  }
}

TEST(PsiScale, RequiresDivisibility) {
  const Problem p = make_table_problem(3, 1.0, {{0.0, 0.0, 0.0, 0.0}});
  EXPECT_THROW(psi_scale(p, 1), std::invalid_argument);
  EXPECT_THROW(psi_scale(p, -1), std::invalid_argument);
}

TEST(PsiScale, IdentityForZero) {
  const Problem p = make_table_problem(2, 1.0, {{1.0, 0.0, 2.0}});
  const Problem q = psi_scale(p, 0);
  EXPECT_EQ(q.max_servers(), 2);
  EXPECT_DOUBLE_EQ(q.cost_at(1, 1), 0.0);
}

TEST(Stretch, PreservesPerSlotTotals) {
  // A schedule constant within each replica block pays exactly the original
  // cost (Theorem 10: Σ_u f'_{t,u}(x) = f_t(x)).
  const Problem p = make_table_problem(2, 1.0, {{2.0, 1.0, 3.0},
                                                {1.0, 0.0, 2.0}});
  const int factor = 4;
  const Problem stretched = stretch_problem(p, factor);
  EXPECT_EQ(stretched.horizon(), 8);

  const Schedule x = {1, 2};
  Schedule x_stretched;
  for (int v : x) {
    for (int copy = 0; copy < factor; ++copy) x_stretched.push_back(v);
  }
  EXPECT_NEAR(total_cost(p, x), total_cost(stretched, x_stretched), 1e-12);
}

TEST(Stretch, FactorOneIsIdentity) {
  const Problem p = make_table_problem(1, 1.0, {{1.0, 0.0}});
  const Problem q = stretch_problem(p, 1);
  EXPECT_EQ(q.horizon(), 1);
  EXPECT_DOUBLE_EQ(q.cost_at(1, 1), 0.0);
  EXPECT_THROW(stretch_problem(p, 0), std::invalid_argument);
}

TEST(Restricted, BuildsConstraintedConvexSlots) {
  RestrictedModel model;
  model.per_server_cost = [](double z) { return 1.0 + z * z; };
  model.m = 8;
  model.beta = 3.0;
  const std::vector<double> lambdas = {0.0, 2.5, 8.0, 1.0};
  const Problem p = restricted_problem(model, lambdas);
  EXPECT_EQ(p.horizon(), 4);
  EXPECT_EQ(p.max_servers(), 8);
  EXPECT_NO_THROW(p.validate());

  // Slot 2 (λ = 2.5): states below 3 infeasible.
  EXPECT_TRUE(std::isinf(p.cost_at(2, 2)));
  EXPECT_TRUE(std::isfinite(p.cost_at(2, 3)));
  // Slot 3 (λ = m): only the full data center is feasible.
  EXPECT_TRUE(std::isinf(p.cost_at(3, 7)));
  EXPECT_TRUE(std::isfinite(p.cost_at(3, 8)));
}

TEST(Restricted, RejectsBadInputs) {
  RestrictedModel model;
  model.per_server_cost = nullptr;
  EXPECT_THROW(restricted_problem(model, {0.5}), std::invalid_argument);

  model.per_server_cost = [](double) { return 0.0; };
  model.m = 2;
  EXPECT_THROW(restricted_problem(model, {3.0}), std::invalid_argument);
  EXPECT_THROW(restricted_problem(model, {-0.5}), std::invalid_argument);
}

TEST(Restricted, Theorem5CostIdentity) {
  // The Theorem-5 reduction: with f(z) = ε|1-2z| and m = 2,
  //   λ = 0.5 gives slot cost ε|x-1| and λ = 1 gives ε|x-2| on feasible x.
  const double eps = 0.125;
  RestrictedModel model;
  model.per_server_cost = [eps](double z) { return eps * std::fabs(1.0 - 2.0 * z); };
  model.m = 2;
  model.beta = 2.0;
  const Problem p = restricted_problem(model, {0.5, 1.0});

  EXPECT_NEAR(p.cost_at(1, 1), eps * 0.0 + 0.0, 1e-12);  // x=1: ε|1-1| = 0
  EXPECT_NEAR(p.cost_at(1, 2), eps * 1.0, 1e-12);        // x=2: ε|2-1|
  EXPECT_NEAR(p.cost_at(2, 1), eps * 1.0, 1e-12);        // x=1: ε|1-2|
  EXPECT_NEAR(p.cost_at(2, 2), eps * 0.0, 1e-12);        // x=2: ε|2-2|
  EXPECT_TRUE(std::isinf(p.cost_at(2, 0)));              // x < λ = 1
}

}  // namespace
