// Property suite for the run-length-encoded replay (scenario/rle.hpp):
// schedules, bounds, and costs must be bit-identical to the slot-by-slot
// replay of the expanded instance on the same backend, across cost
// families, backends, run shapes (single-slot, all-constant), and the
// WindowedLcp sliding conversion cache with duplicate CostPtrs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/cost_function.hpp"
#include "core/piecewise_linear.hpp"
#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "offline/work_function.hpp"
#include "online/lcp.hpp"
#include "online/lcp_window.hpp"
#include "online/online_algorithm.hpp"
#include "scenario/rle.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace {

using rs::core::CostPtr;
using rs::core::Problem;
using rs::core::Schedule;
using rs::offline::WorkFunctionTracker;
using rs::scenario::RleProblem;
using rs::scenario::RleRun;
using rs::scenario::RleTrace;
using rs::workload::Trace;
using Backend = WorkFunctionTracker::Backend;

// A blocky trace: runs of varied length, including singletons.
Trace blocky_trace(std::uint64_t seed, int horizon, double peak) {
  rs::util::Rng rng(seed);
  Trace trace;
  while (trace.horizon() < horizon) {
    const double level =
        static_cast<double>(rng.uniform_int(0, 8)) / 8.0 * peak;
    const int length = static_cast<int>(rng.uniform_int(1, 9));
    for (int i = 0; i < length && trace.horizon() < horizon; ++i) {
      trace.lambda.push_back(level);
    }
  }
  return trace;
}

// λ -> slot cost factories, one per cost family under test.
struct Family {
  const char* name;
  bool pwl_capable;  // admits forced-kPwl replays
  std::function<CostPtr(double)> cost_of;
};

std::vector<Family> all_families(int m) {
  std::vector<Family> families;
  families.push_back(
      {"linear_load", true, [](double lambda) -> CostPtr {
         return std::make_shared<rs::core::LinearLoadSlotCost>(1.0, 0.5,
                                                               lambda);
       }});
  families.push_back({"hinge_sla", true, [](double lambda) -> CostPtr {
                        std::vector<CostPtr> parts;
                        parts.push_back(
                            std::make_shared<rs::core::PiecewiseLinearCost>(
                                std::vector<rs::core::Breakpoint>{
                                    {0.0, 0.0}, {1.0, 1.0}}));
                        parts.push_back(
                            rs::core::make_shortfall_hinge(8.0, 1.2 * lambda));
                        return std::make_shared<rs::core::SumCost>(
                            std::move(parts));
                      }});
  families.push_back({"affine_abs", true, [](double lambda) -> CostPtr {
                        return std::make_shared<rs::core::AffineAbsCost>(
                            0.75, lambda, 0.25);
                      }});
  families.push_back({"quadratic", true, [](double lambda) -> CostPtr {
                        return std::make_shared<rs::core::QuadraticCost>(
                            0.5, lambda, 0.0);
                      }});
  families.push_back({"table", true, [m](double lambda) -> CostPtr {
                        std::vector<double> values;
                        for (int x = 0; x <= m; ++x) {
                          values.push_back(std::fabs(x - lambda));
                        }
                        return std::make_shared<rs::core::TableCost>(
                            std::move(values));
                      }});
  // Opaque callable: is_convex() false, so this family always runs dense
  // (and a forced-kPwl replay must throw).
  families.push_back({"function", false, [](double lambda) -> CostPtr {
                        return std::make_shared<rs::core::FunctionCost>(
                            [lambda](int x) {
                              return std::fabs(static_cast<double>(x) - lambda);
                            });
                      }});
  return families;
}

TEST(RleTraceCodec, RoundTripAndGrouping) {
  Trace trace{{2.0, 2.0, 2.0, 0.5, 1.0, 1.0, 2.0}};
  const RleTrace rle = rs::scenario::rle_encode(trace);
  ASSERT_EQ(rle.run_count(), 4);
  EXPECT_EQ(rle.runs[0].length, 3);
  EXPECT_EQ(rle.runs[1].length, 1);
  EXPECT_EQ(rle.horizon(), 7);
  EXPECT_EQ(rs::scenario::rle_decode(rle).lambda, trace.lambda);

  EXPECT_EQ(rs::scenario::rle_encode(Trace{}).run_count(), 0);
  EXPECT_EQ(rs::scenario::rle_decode(RleTrace{}).horizon(), 0);
}

TEST(RleProblemView, CompressExpandRoundTrip) {
  const auto a = std::make_shared<rs::core::AffineAbsCost>(1.0, 1.0);
  const auto b = std::make_shared<rs::core::AffineAbsCost>(1.0, 1.0);
  // a a a b b a — identity grouping: the two structurally-equal cost
  // objects stay distinct runs.
  Problem p(4, 2.0, {a, a, a, b, b, a});
  const RleProblem rle = rs::scenario::rle_compress(p);
  ASSERT_EQ(rle.run_count(), 3);
  EXPECT_EQ(rle.runs()[0].length, 3);
  EXPECT_EQ(rle.runs()[1].length, 2);
  EXPECT_EQ(rle.horizon(), 6);

  const Problem back = rle.expand();
  ASSERT_EQ(back.horizon(), 6);
  EXPECT_EQ(back.max_servers(), 4);
  EXPECT_DOUBLE_EQ(back.beta(), 2.0);
  for (int t = 1; t <= 6; ++t) {
    EXPECT_EQ(back.f_ptr(t).get(), p.f_ptr(t).get()) << "slot " << t;
  }
}

TEST(RleProblemView, Validation) {
  const auto f = std::make_shared<rs::core::AffineAbsCost>(1.0, 0.0);
  EXPECT_THROW(RleProblem(-1, 2.0, {{f, 1}}), std::invalid_argument);
  EXPECT_THROW(RleProblem(4, 0.0, {{f, 1}}), std::invalid_argument);
  EXPECT_THROW(RleProblem(4, 2.0, {{nullptr, 1}}), std::invalid_argument);
  EXPECT_THROW(RleProblem(4, 2.0, {{f, 0}}), std::invalid_argument);
  EXPECT_THROW(rs::scenario::rle_problem_from_trace(RleTrace{}, 4, 2.0,
                                                    nullptr),
               std::invalid_argument);
}

// The core property: for every family × backend, the RLE replay and the
// slot-by-slot replay of the expanded instance produce the SAME schedule
// (integer-exact, so EXPECT_EQ) and the same cost.
TEST(RleReplay, BitIdenticalAcrossFamiliesAndBackends) {
  const int m = 12;
  const Trace trace = blocky_trace(42, 160, 10.0);
  const RleTrace rle_trace = rs::scenario::rle_encode(trace);
  for (const Family& family : all_families(m)) {
    const RleProblem rle =
        rs::scenario::rle_problem_from_trace(rle_trace, m, 3.0,
                                             family.cost_of);
    const Problem expanded = rle.expand();
    for (Backend backend : {Backend::kAuto, Backend::kDense, Backend::kPwl}) {
      if (backend == Backend::kPwl && !family.pwl_capable) {
        EXPECT_THROW(rs::scenario::replay_lcp(rle, backend),
                     std::invalid_argument)
            << family.name;
        continue;
      }
      rs::online::Lcp reference(backend);
      const Schedule expected = rs::online::run_online(reference, expanded);
      const Schedule actual = rs::scenario::replay_lcp(rle, backend);
      EXPECT_EQ(actual, expected)
          << family.name << " backend " << static_cast<int>(backend);
      EXPECT_DOUBLE_EQ(rs::core::total_cost(expanded, actual),
                       rs::core::total_cost(expanded, expected))
          << family.name;
    }
  }
}

TEST(RleReplay, SingleSlotRunsAndAllConstant) {
  const int m = 8;
  const auto cost_of = [](double lambda) -> CostPtr {
    return std::make_shared<rs::core::AffineAbsCost>(1.0, lambda);
  };
  // All runs length 1 (strictly alternating levels).
  Trace alternating;
  for (int t = 0; t < 60; ++t) {
    alternating.lambda.push_back(t % 2 == 0 ? 2.0 : 6.0);
  }
  // One run spanning the whole horizon.
  Trace constant;
  constant.lambda.assign(60, 5.0);

  for (const Trace& trace : {alternating, constant}) {
    const RleProblem rle = rs::scenario::rle_problem_from_trace(
        rs::scenario::rle_encode(trace), m, 4.0, cost_of);
    const Problem expanded = rle.expand();
    for (Backend backend : {Backend::kAuto, Backend::kDense, Backend::kPwl}) {
      rs::online::Lcp reference(backend);
      EXPECT_EQ(rs::scenario::replay_lcp(rle, backend),
                rs::online::run_online(reference, expanded));
    }
  }
  // Degenerate: zero runs.
  EXPECT_TRUE(rs::scenario::replay_lcp(RleProblem(m, 4.0, {})).empty());
}

TEST(RleReplay, BoundsMatchSlotBySlot) {
  const int m = 10;
  const Trace trace = blocky_trace(7, 120, 9.0);
  const RleProblem rle = rs::scenario::rle_problem_from_trace(
      rs::scenario::rle_encode(trace), m, 2.5, [](double lambda) -> CostPtr {
        return std::make_shared<rs::core::LinearLoadSlotCost>(0.5, 1.0,
                                                              lambda);
      });
  const Problem expanded = rle.expand();
  for (Backend backend : {Backend::kDense, Backend::kPwl}) {
    const rs::offline::BoundTrajectory expected =
        rs::offline::compute_bounds(expanded, backend);
    const rs::offline::BoundTrajectory actual =
        rs::scenario::compute_bounds(rle, backend);
    EXPECT_EQ(actual.lower, expected.lower);
    EXPECT_EQ(actual.upper, expected.upper);
  }
}

// Direct advance_repeated checks, including the chat values after a
// fixpoint jump (tolerance-level per the DESIGN.md §8 contract) and the
// argument validation.
TEST(AdvanceRepeated, MatchesIndividualAdvances) {
  const int m = 6;
  const rs::core::AffineAbsCost f(1.0, 4.0);
  for (Backend backend : {Backend::kDense, Backend::kPwl, Backend::kAuto}) {
    WorkFunctionTracker loop(m, 2.0, backend);
    WorkFunctionTracker batch(m, 2.0, backend);
    const int count = 25;
    std::vector<int> xl(count), xu(count);
    batch.advance_repeated(f, count, xl, xu);
    EXPECT_EQ(batch.tau(), count);
    for (int i = 0; i < count; ++i) {
      loop.advance(f);
      EXPECT_EQ(xl[static_cast<std::size_t>(i)], loop.x_lower()) << i;
      EXPECT_EQ(xu[static_cast<std::size_t>(i)], loop.x_upper()) << i;
    }
    for (int x = 0; x <= m; ++x) {
      EXPECT_NEAR(batch.chat_lower(x), loop.chat_lower(x), 1e-9);
      EXPECT_NEAR(batch.chat_upper(x), loop.chat_upper(x), 1e-9);
    }
  }
}

TEST(AdvanceRepeated, ResumesCorrectlyAfterRun) {
  // A run followed by a different cost: the fast-forwarded state must
  // continue exactly like the stepped one (schedule equality over a
  // two-run instance where the second run reacts to the first's values).
  const int m = 6;
  WorkFunctionTracker loop(m, 2.0, Backend::kPwl);
  WorkFunctionTracker batch(m, 2.0, Backend::kPwl);
  const rs::core::AffineAbsCost high(1.0, 5.0);
  const rs::core::AffineAbsCost low(1.0, 1.0);
  std::vector<int> xl(30), xu(30);
  batch.advance_repeated(high, 30, xl, xu);
  for (int i = 0; i < 30; ++i) loop.advance(high);
  batch.advance_repeated(low, 30, xl, xu);
  for (int i = 0; i < 30; ++i) {
    loop.advance(low);
    EXPECT_EQ(xl[static_cast<std::size_t>(i)], loop.x_lower()) << i;
    EXPECT_EQ(xu[static_cast<std::size_t>(i)], loop.x_upper()) << i;
  }
}

TEST(AdvanceRepeated, Validation) {
  WorkFunctionTracker tracker(4, 2.0);
  const rs::core::AffineAbsCost f(1.0, 2.0);
  std::vector<int> xl(2), xu(2);
  EXPECT_THROW(tracker.advance_repeated(f, -1, xl, xu),
               std::invalid_argument);
  EXPECT_THROW(tracker.advance_repeated(f, 3, xl, xu),
               std::invalid_argument);
  // count = 0 is a no-op.
  tracker.advance_repeated(f, 0, xl, xu);
  EXPECT_EQ(tracker.tau(), 0);

  // Raw value rows are dense-only: a forced-kPwl tracker must throw.
  WorkFunctionTracker pwl(4, 2.0, Backend::kPwl);
  const std::vector<double> row = {4.0, 3.0, 2.0, 1.0, 0.0};
  EXPECT_THROW(
      pwl.advance_repeated(std::span<const double>(row), 2, xl, xu),
      std::logic_error);
}

// WindowedLcp over an RLE-expanded instance: runs straddle the prediction
// window, so the sliding form cache sees the SAME CostPtr at several
// window positions at once.  The replay must match the one over a
// per-slot-unique but structurally identical instance.
TEST(RleReplay, WindowedLcpStraddlesRunBoundaries) {
  const int m = 9;
  const Trace trace = blocky_trace(11, 90, 8.0);
  const RleTrace rle_trace = rs::scenario::rle_encode(trace);
  const auto shared_cost = [](double lambda) -> CostPtr {
    return std::make_shared<rs::core::AffineAbsCost>(1.0, lambda);
  };
  const RleProblem rle =
      rs::scenario::rle_problem_from_trace(rle_trace, m, 3.0, shared_cost);
  const Problem shared = rle.expand();
  // Same instance with one fresh cost object per slot (no pointer reuse).
  std::vector<CostPtr> unique_costs;
  for (double lambda : trace.lambda) unique_costs.push_back(shared_cost(lambda));
  const Problem unique(m, 3.0, std::move(unique_costs));

  for (Backend backend : {Backend::kDense, Backend::kAuto, Backend::kPwl}) {
    for (int window : {1, 3, 7}) {
      rs::online::WindowedLcp on_shared(backend);
      rs::online::WindowedLcp on_unique(backend);
      EXPECT_EQ(rs::online::run_online(on_shared, shared, window),
                rs::online::run_online(on_unique, unique, window))
          << "backend " << static_cast<int>(backend) << " window " << window;
    }
  }
}

}  // namespace
