// Tests for the extension components: the low-memory divide-and-conquer
// solver, the receding-horizon / AFHC baselines, piecewise-linear cost
// functions, and the DOT exporter.
#include <gtest/gtest.h>

#include <cmath>

#include "core/piecewise_linear.hpp"
#include "core/schedule.hpp"
#include "graph/dot_export.hpp"
#include "offline/dp_solver.hpp"
#include "offline/low_memory_solver.hpp"
#include "online/receding_horizon.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::workload::InstanceFamily;

// --- LowMemorySolver ---------------------------------------------------------

TEST(LowMemorySolver, MatchesDpAcrossFamilies) {
  rs::util::Rng rng(41);
  const rs::offline::DpSolver dp;
  const rs::offline::LowMemorySolver low;
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    for (int trial = 0; trial < 8; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 40));
      const int m = static_cast<int>(rng.uniform_int(1, 16));
      const Problem p = rs::workload::random_instance(
          rng, family, T, m, rng.uniform(0.2, 3.0));
      const rs::offline::OfflineResult expected = dp.solve(p);
      const rs::offline::OfflineResult actual = low.solve(p);
      ASSERT_NEAR(actual.cost, expected.cost, 1e-8)
          << rs::workload::family_name(family) << " T=" << T << " m=" << m;
      if (actual.feasible()) {
        // The returned schedule itself must price at the optimum.
        EXPECT_NEAR(rs::core::total_cost(p, actual.schedule), expected.cost,
                    1e-8);
      }
    }
  }
}

TEST(LowMemorySolver, EdgeCases) {
  const rs::offline::LowMemorySolver low;
  const Problem empty(3, 1.0, {});
  EXPECT_DOUBLE_EQ(low.solve(empty).cost, 0.0);

  const Problem single = rs::core::make_table_problem(2, 1.0, {{2.0, 0.5, 1.0}});
  const rs::offline::OfflineResult result = low.solve(single);
  EXPECT_EQ(result.schedule, (Schedule{1}));
  EXPECT_NEAR(result.cost, 1.5, 1e-12);

  const Problem infeasible = rs::core::make_table_problem(1, 1.0, {{kInf, kInf}});
  EXPECT_FALSE(low.solve(infeasible).feasible());
}

TEST(LowMemorySolver, LongHorizonStress) {
  rs::util::Rng rng(43);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 500, 12, 1.0);
  const double expected = rs::offline::DpSolver().solve_cost(p);
  const rs::offline::OfflineResult actual =
      rs::offline::LowMemorySolver().solve(p);
  EXPECT_NEAR(actual.cost, expected, 1e-7);
  EXPECT_NEAR(rs::core::total_cost(p, actual.schedule), expected, 1e-7);
}

// --- RecedingHorizon / AFHC --------------------------------------------------

TEST(PlanFixedHorizon, SolvesWindowOptimally) {
  // Hand-checkable window: start 0, β = 1.
  const auto f1 = std::make_shared<rs::core::TableCost>(
      std::vector<double>{3.0, 0.0, 0.0});
  const auto f2 = std::make_shared<rs::core::TableCost>(
      std::vector<double>{0.0, 2.0, 4.0});
  std::vector<rs::core::CostPtr> lookahead = {f2};
  const std::vector<int> plan = rs::online::plan_fixed_horizon(
      0, f1, {lookahead.data(), 1}, 2, 1.0);
  ASSERT_EQ(plan.size(), 2u);
  // Optimal: x1 = 1 (pay β=1, f=0), x2 = 0 (f=0): total 1.
  EXPECT_EQ(plan[0], 1);
  EXPECT_EQ(plan[1], 0);
}

TEST(RecedingHorizon, FullLookaheadIsOptimal) {
  // With the whole future visible, RHC's first action follows an optimal
  // plan at every step, so its schedule is optimal.
  rs::util::Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 20));
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.3, 2.0));
    rs::online::RecedingHorizon rhc;
    const Schedule x = rs::online::run_online(rhc, p, T);
    EXPECT_NEAR(rs::core::total_cost(p, x),
                rs::offline::DpSolver().solve_cost(p), 1e-8);
  }
}

TEST(RecedingHorizon, ZeroWindowIsGreedy) {
  // Without lookahead RHC greedily balances the switch against the current
  // slot only.
  const Problem p = rs::core::make_table_problem(
      1, 10.0, {{1.0, 0.0}, {0.0, 1.0}});
  rs::online::RecedingHorizon rhc;
  const Schedule x = rs::online::run_online(rhc, p, 0);
  // β = 10 dominates: stays at 0 both slots.
  EXPECT_EQ(x, (Schedule{0, 0}));
}

TEST(RecedingHorizon, RespectsHardConstraints) {
  const Problem p = rs::core::make_table_problem(
      2, 1.0, {{kInf, 1.0, 2.0}, {kInf, kInf, 0.5}});
  rs::online::RecedingHorizon rhc;
  const Schedule x = rs::online::run_online(rhc, p, 1);
  EXPECT_GE(x[0], 1);
  EXPECT_EQ(x[1], 2);
}

TEST(Afhc, MatchesRhcForZeroWindow) {
  rs::util::Rng rng(45);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 25, 6, 1.0);
  rs::online::RecedingHorizon rhc;
  const Schedule rhc_schedule = rs::online::run_online(rhc, p, 0);
  rs::online::AveragingFixedHorizon afhc(0);
  const rs::core::FractionalSchedule afhc_schedule =
      rs::online::run_online(afhc, p, 0);
  for (std::size_t t = 0; t < rhc_schedule.size(); ++t) {
    EXPECT_NEAR(afhc_schedule[t], static_cast<double>(rhc_schedule[t]), 1e-12);
  }
}

TEST(Afhc, StaysWithinBoxAndHelpsOnDiurnal) {
  rs::util::Rng rng(46);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kQuadratic, 60, 10, 2.0);
  const int w = 4;
  rs::online::AveragingFixedHorizon afhc(w);
  const rs::core::FractionalSchedule x = rs::online::run_online(afhc, p, w);
  for (double value : x) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 10.0);
  }
  EXPECT_THROW(rs::online::AveragingFixedHorizon(-1), std::invalid_argument);
}

// --- PiecewiseLinearCost -----------------------------------------------------

TEST(PiecewiseLinear, EvaluatesSegmentsAndExtends) {
  rs::core::PiecewiseLinearCost f(
      {{0.0, 4.0}, {2.0, 0.0}, {5.0, 3.0}});
  EXPECT_DOUBLE_EQ(f.at_real(0.0), 4.0);
  EXPECT_DOUBLE_EQ(f.at_real(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f.at_real(2.0), 0.0);
  EXPECT_DOUBLE_EQ(f.at_real(3.5), 1.5);
  EXPECT_DOUBLE_EQ(f.at(6), 4.0);        // extension of the last slope
  EXPECT_DOUBLE_EQ(f.at_real(-1.0), 6.0);  // extension of the first slope
}

TEST(PiecewiseLinear, RejectsNonConvexAndBadInput) {
  EXPECT_THROW(rs::core::PiecewiseLinearCost({}), std::invalid_argument);
  EXPECT_THROW(rs::core::PiecewiseLinearCost({{0.0, 0.0}, {0.0, 1.0}}),
               std::invalid_argument);
  // Slopes 1 then 0.5: concave kink.
  EXPECT_THROW(rs::core::PiecewiseLinearCost(
                   {{0.0, 0.0}, {1.0, 1.0}, {2.0, 1.5}}),
               std::invalid_argument);
}

TEST(PiecewiseLinear, ConstantFunction) {
  rs::core::PiecewiseLinearCost f({{0.0, 2.5}});
  EXPECT_DOUBLE_EQ(f.at(0), 2.5);
  EXPECT_DOUBLE_EQ(f.at(100), 2.5);
}

TEST(Hinge, MatchesSoftSlaShape) {
  const rs::core::CostPtr hinge = rs::core::make_hinge(3.0, 4.0);
  EXPECT_DOUBLE_EQ(hinge->at(0), 0.0);
  EXPECT_DOUBLE_EQ(hinge->at(4), 0.0);
  EXPECT_DOUBLE_EQ(hinge->at(6), 6.0);
  EXPECT_TRUE(rs::core::validate_cost_function(*hinge, 10).ok());
  EXPECT_THROW(rs::core::make_hinge(-1.0, 0.0), std::invalid_argument);
}

TEST(SumCost, AddsPartsAndPropagatesInf) {
  auto a = std::make_shared<rs::core::AffineAbsCost>(1.0, 2.0);
  auto b = rs::core::make_hinge(2.0, 1.0);
  rs::core::SumCost sum({a, b});
  EXPECT_DOUBLE_EQ(sum.at(0), 2.0);
  EXPECT_DOUBLE_EQ(sum.at(3), 1.0 + 4.0);
  EXPECT_TRUE(rs::core::validate_cost_function(sum, 8).ok());

  auto constrained = std::make_shared<rs::core::TableCost>(
      std::vector<double>{kInf, 0.0});
  rs::core::SumCost with_inf({a, constrained});
  EXPECT_TRUE(std::isinf(with_inf.at(0)));
  EXPECT_THROW(rs::core::SumCost({}), std::invalid_argument);
  EXPECT_THROW(rs::core::SumCost({nullptr}), std::invalid_argument);
}

TEST(SumCost, BuildsProblemSlots) {
  // Energy + shortfall hinge assembled from the public pieces behaves like
  // the dcsim soft model.
  std::vector<rs::core::CostPtr> fs;
  for (double lambda : {2.0, 5.0}) {
    fs.push_back(std::make_shared<rs::core::SumCost>(std::vector<rs::core::CostPtr>{
        std::make_shared<rs::core::PiecewiseLinearCost>(
            std::vector<rs::core::Breakpoint>{{0.0, 0.0}, {1.0, 1.0}}),
        rs::core::make_shortfall_hinge(20.0, lambda)}));
  }
  const Problem p(8, 3.0, std::move(fs));
  EXPECT_NO_THROW(p.validate());
  const rs::offline::OfflineResult result = rs::offline::DpSolver().solve(p);
  ASSERT_TRUE(result.feasible());
  EXPECT_GE(result.schedule[1], 5);  // hinge forces capacity at the peak
}

TEST(ShortfallHinge, PenalizesBelowKnee) {
  const rs::core::CostPtr hinge = rs::core::make_shortfall_hinge(3.0, 4.0);
  EXPECT_DOUBLE_EQ(hinge->at(0), 12.0);
  EXPECT_DOUBLE_EQ(hinge->at(4), 0.0);
  EXPECT_DOUBLE_EQ(hinge->at(6), 0.0);
  EXPECT_TRUE(rs::core::validate_cost_function(*hinge, 10).ok());
}

// --- DOT export --------------------------------------------------------------

TEST(DotExport, RendersSmallGraphWithHighlightedPath) {
  const Problem p = rs::core::make_table_problem(
      2, 1.0, {{2.0, 0.5, 1.0}, {1.0, 0.5, 2.0}});
  const std::string dot = rs::graph::schedule_graph_dot(p);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0_0"), std::string::npos);
  EXPECT_NE(dot.find("v3_0"), std::string::npos);      // final layer
  EXPECT_NE(dot.find("fillcolor=gold"), std::string::npos);  // optimal path
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(DotExport, RefusesLargeGraphs) {
  rs::util::Rng rng(47);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kConvexTable, 50, 40, 1.0);
  EXPECT_THROW(rs::graph::schedule_graph_dot(p), std::invalid_argument);
}

TEST(DotExport, GenericGraphRendering) {
  rs::graph::LayeredGraph graph({1, 2, 1});
  graph.add_edge(0, 0, 0, 1.5);
  graph.add_edge(0, 0, 1, 0.5);
  graph.add_edge(1, 1, 0, 0.25);
  const std::string dot = rs::graph::to_dot(graph);
  EXPECT_NE(dot.find("v0_0 -> v1_1"), std::string::npos);
  EXPECT_NE(dot.find("0.50"), std::string::npos);
}

}  // namespace
