// Fleet controller: the self-healing multi-tenant serving layer
// (DESIGN.md §11).
//
// The acceptance criterion is the chaos drill: with seeded faults killing
// and poisoning random tenants mid-stream, the controller must quarantine
// exactly the genuinely poisoned tenants, restore every killed tenant from
// its latest checkpoint, and leave every survivor's schedule and corridor
// bounds bit-identical to an undisturbed run — across backends {kDense,
// kPwl, kAuto} and thread counts {1, 2, 4}.  Because every fleet fault site
// is keyed by util::tenant_fault_index, the casualty set is *predicted*
// from the plan (scenario::corrupted_offers / killed_attempts) and asserted
// exactly, under any rotating CI seed.
//
// The drill tenants use integer-valued AffineAbs slot costs, so the dense
// and PWL backends agree bitwise and a mid-drill degrade-to-dense cannot
// perturb a survivor's schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint_store.hpp"
#include "core/cost_function.hpp"
#include "fleet/fleet_controller.hpp"
#include "fleet/tenant.hpp"
#include "offline/work_function.hpp"
#include "online/lcp.hpp"
#include "scenario/fault_plan.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace {

using rs::core::CheckpointStore;
using rs::fleet::FleetController;
using rs::fleet::FleetEvent;
using rs::fleet::FleetEventKind;
using rs::fleet::FleetOptions;
using rs::fleet::OverflowPolicy;
using rs::fleet::TenantCheckpoint;
using rs::fleet::TenantConfig;
using rs::fleet::TenantSession;
using rs::fleet::TenantState;
using rs::scenario::FaultPlan;
using rs::scenario::PoisonKind;
using rs::util::ScopedFaultInjection;
using Backend = rs::offline::WorkFunctionTracker::Backend;

std::uint64_t base_seed() {
  return rs::util::env_fault_base_seed(0xC0FFEEull);
}

// Integer-valued slot costs: slope ∈ {1, 2}, center = λ (fed integer λ), so
// every work-function value is exact in double on both backends and dense
// and PWL decisions agree bitwise.
std::function<rs::core::CostPtr(double)> integer_cost() {
  return [](double lambda) -> rs::core::CostPtr {
    const double slope =
        1.0 + static_cast<double>(static_cast<long long>(lambda) % 2);
    return std::make_shared<rs::core::AffineAbsCost>(slope, lambda, 0.0);
  };
}

std::vector<double> integer_trace(int m, int horizon, std::uint64_t seed) {
  rs::util::Rng rng(seed);
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(horizon));
  for (int t = 0; t < horizon; ++t) {
    trace.push_back(static_cast<double>(rng.uniform_int(0, m)));
  }
  return trace;
}

TenantConfig basic_config(std::string name, int m, double beta = 2.0) {
  TenantConfig config;
  config.name = std::move(name);
  config.m = m;
  config.beta = beta;
  config.cost_of = integer_cost();
  return config;
}

bool has_event(const std::vector<FleetEvent>& events, std::size_t tenant,
               FleetEventKind kind) {
  for (const FleetEvent& e : events) {
    if (e.tenant == tenant && e.kind == kind) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Validation and plumbing
// ---------------------------------------------------------------------------

TEST(FleetTenant, ValidatesConfig) {
  const auto expect_bad = [](TenantConfig config) {
    EXPECT_THROW(TenantSession(std::move(config), 0), std::invalid_argument);
  };
  expect_bad(basic_config("", 4));
  expect_bad(basic_config("t", 0));
  expect_bad(basic_config("t", -3));
  {
    TenantConfig c = basic_config("t", 4);
    c.beta = -1.0;
    expect_bad(c);
  }
  {
    TenantConfig c = basic_config("t", 4);
    c.window = -1;
    expect_bad(c);
  }
  {
    TenantConfig c = basic_config("t", 4);
    c.cost_of = nullptr;
    expect_bad(c);
  }
  {
    TenantConfig c = basic_config("t", 4);
    c.queue_capacity = 0;
    expect_bad(c);
  }
  {
    TenantConfig c = basic_config("t", 4);
    c.checkpoint_every = 0;
    expect_bad(c);
  }
  {
    TenantConfig c = basic_config("t", 4);
    c.degrade_after = 0;
    expect_bad(c);
  }
  {
    TenantConfig c = basic_config("t", 4);
    c.max_recoveries = -1;
    expect_bad(c);
  }
}

TEST(FleetController, ValidatesOptionsAndTenantNames) {
  {
    FleetOptions options;
    options.tick_budget_seconds = -1.0;
    EXPECT_THROW(FleetController{options}, std::invalid_argument);
  }
  {
    FleetOptions options;
    options.max_events = 0;
    EXPECT_THROW(FleetController{options}, std::invalid_argument);
  }

  FleetController fleet;
  fleet.add_tenant(basic_config("a/b", 4));
  // Collides with "a/b" after sanitization — would share a store key.
  EXPECT_THROW(fleet.add_tenant(basic_config("a_b", 4)),
               std::invalid_argument);
  EXPECT_THROW(fleet.tenant(7), std::out_of_range);
  EXPECT_THROW(fleet.offer(7, 1.0), std::out_of_range);

  // An empty (or fully drained) fleet ticks to a no-op and drains in zero
  // ticks instead of spinning.
  const rs::fleet::TickReport report = fleet.tick();
  EXPECT_EQ(report.due, 0u);
  EXPECT_EQ(fleet.run_until_drained(), 0u);
}

// ---------------------------------------------------------------------------
// Input hardening
// ---------------------------------------------------------------------------

TEST(FleetTenant, PoisonedInputsQuarantineWithReason) {
  struct Case {
    const char* label;
    std::function<rs::core::CostPtr(double)> cost_of;
    double lambda;
    const char* reason_substr;
  };
  const auto base_cost = integer_cost();
  const std::vector<Case> cases = {
      {"nan lambda", base_cost, std::numeric_limits<double>::quiet_NaN(),
       "invalid λ sample"},
      {"inf lambda", base_cost, std::numeric_limits<double>::infinity(),
       "invalid λ sample"},
      {"negative lambda", base_cost, -1.0, "invalid λ sample"},
      {"throwing factory",
       [](double) -> rs::core::CostPtr {
         throw std::runtime_error("telemetry offline");
       },
       2.0, "cost factory threw"},
      {"null factory", [](double) -> rs::core::CostPtr { return nullptr; },
       2.0, "cost factory returned null"},
      {"nan cost",
       [&](double lambda) {
         return rs::scenario::make_poisoned_cost(base_cost(lambda),
                                                 PoisonKind::kNaN);
       },
       2.0, "slot cost evaluates to NaN"},
      {"throwing cost",
       [&](double lambda) {
         return rs::scenario::make_poisoned_cost(base_cost(lambda),
                                                 PoisonKind::kThrow);
       },
       2.0, "slot cost evaluation threw"},
      {"negative cost",
       [](double) -> rs::core::CostPtr {
         return std::make_shared<rs::core::AffineAbsCost>(1.0, 0.0, -100.0);
       },
       2.0, "slot cost is negative"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    TenantConfig config = basic_config("victim", 5);
    config.cost_of = c.cost_of;
    TenantSession session(config, 0);
    EXPECT_FALSE(session.offer(c.lambda));
    EXPECT_EQ(session.state(), TenantState::kQuarantined);
    EXPECT_NE(session.stats().quarantine_reason.find(c.reason_substr),
              std::string::npos)
        << "actual reason: " << session.stats().quarantine_reason;
    // Terminal: further offers bounce, nothing is due, the queue is freed.
    EXPECT_FALSE(session.offer(1.0));
    EXPECT_FALSE(session.due());
    EXPECT_TRUE(session.drained());
    EXPECT_EQ(session.queue_depth(), 0u);
  }

  // +inf cost is legitimate infeasibility, not poison — it must pass the
  // probe (the fault/infeasibility distinction).
  TenantConfig config = basic_config("infeasible", 5);
  config.cost_of = [&](double lambda) {
    return rs::scenario::make_poisoned_cost(base_cost(lambda),
                                            PoisonKind::kInfeasible);
  };
  TenantSession session(config, 0);
  EXPECT_TRUE(session.offer(2.0));
  EXPECT_EQ(session.state(), TenantState::kHealthy);
}

TEST(FleetTenant, OverflowPoliciesBoundTheQueue) {
  CheckpointStore store;
  const std::vector<double> lambdas = {1.0, 4.0, 2.0, 5.0, 3.0, 0.0};

  {  // kRejectNewest: backpressure — the producer sees false.
    TenantConfig config = basic_config("reject", 6);
    config.queue_capacity = 4;
    TenantSession session(config, 0);
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      EXPECT_EQ(session.offer(lambdas[i]), i < 4) << "i=" << i;
    }
    EXPECT_EQ(session.stats().offered, 4u);
    EXPECT_EQ(session.stats().rejected, 2u);
    EXPECT_EQ(session.queue_depth(), 4u);
    while (session.due()) session.step(store);
    EXPECT_EQ(session.schedule().size(), 4u);
    EXPECT_TRUE(has_event(session.drain_events(), 0,
                          FleetEventKind::kOverflow));
  }

  {  // kDropOldest: newest-wins — the tail of the stream survives.
    TenantConfig config = basic_config("drop", 6);
    config.queue_capacity = 4;
    config.overflow = OverflowPolicy::kDropOldest;
    TenantSession session(config, 0);
    for (double lambda : lambdas) EXPECT_TRUE(session.offer(lambda));
    EXPECT_EQ(session.stats().overflow_drops, 2u);
    EXPECT_EQ(session.queue_depth(), 4u);
    while (session.due()) session.step(store);

    // The decided slots must match a reference fed only the surviving tail.
    TenantSession reference(basic_config("drop-ref", 6), 1);
    for (std::size_t i = 2; i < lambdas.size(); ++i) {
      reference.offer(lambdas[i]);
    }
    while (reference.due()) reference.step(store);
    EXPECT_EQ(session.schedule(), reference.schedule());

    // A run that alone exceeds capacity is rejected even after dropping
    // everything else.
    EXPECT_FALSE(session.offer_run(1.0, 5));
  }
}

// ---------------------------------------------------------------------------
// Checkpoint cadence and RLE ingest
// ---------------------------------------------------------------------------

TEST(FleetTenant, CheckpointCadenceSealsDecodableSnapshots) {
  FleetController fleet;
  TenantConfig config = basic_config("cadence", 8);
  config.checkpoint_every = 4;
  const std::size_t ordinal = fleet.add_tenant(config);
  for (double lambda : integer_trace(8, 10, 77)) fleet.offer(ordinal, lambda);
  fleet.run_until_drained();

  // 10 slots at cadence 4 → snapshots at slots 4 and 8.
  EXPECT_EQ(fleet.tenant(ordinal).stats().checkpoints, 2u);
  const auto at_cadence = fleet.store().latest("cadence");
  ASSERT_TRUE(at_cadence.has_value());
  EXPECT_EQ(TenantSession::decode_checkpoint(*at_cadence).steps, 8u);

  // checkpoint_all flushes the off-cadence tail.
  fleet.checkpoint_all();
  const auto final_save = fleet.store().latest("cadence");
  ASSERT_TRUE(final_save.has_value());
  const TenantCheckpoint decoded =
      TenantSession::decode_checkpoint(*final_save);
  EXPECT_EQ(decoded.steps, 10u);
  EXPECT_FALSE(decoded.degraded);
  EXPECT_TRUE(has_event(fleet.events(), ordinal,
                        FleetEventKind::kCheckpointed));
}

TEST(FleetTenant, RleRunsMatchPerSlotOffers) {
  const std::vector<std::pair<double, int>> runs = {
      {3.0, 5}, {7.0, 3}, {1.0, 6}, {4.0, 1}};

  FleetController rle_fleet;
  FleetController slot_fleet;
  const std::size_t a = rle_fleet.add_tenant(basic_config("rle", 9));
  const std::size_t b = slot_fleet.add_tenant(basic_config("slots", 9));
  for (const auto& [lambda, count] : runs) {
    EXPECT_TRUE(rle_fleet.offer_run(a, lambda, count));
    for (int i = 0; i < count; ++i) EXPECT_TRUE(slot_fleet.offer(b, lambda));
  }
  // A window-0 tenant decides a whole run per tick (the closed-form
  // advance_repeated path); per-slot ingest needs one tick per slot.
  EXPECT_EQ(rle_fleet.run_until_drained(), runs.size());
  EXPECT_EQ(slot_fleet.run_until_drained(), 15u);

  EXPECT_EQ(rle_fleet.tenant(a).schedule(), slot_fleet.tenant(b).schedule());
  EXPECT_EQ(rle_fleet.tenant(a).lower_bounds(),
            slot_fleet.tenant(b).lower_bounds());
  EXPECT_EQ(rle_fleet.tenant(a).upper_bounds(),
            slot_fleet.tenant(b).upper_bounds());
  EXPECT_EQ(rle_fleet.tenant(a).steps(), 15u);
}

// ---------------------------------------------------------------------------
// The chaos drill (the PR's acceptance criterion)
// ---------------------------------------------------------------------------

struct DrillTenant {
  const char* name;
  int m;
  double beta;
  Backend backend;
  int window;
};

std::vector<DrillTenant> drill_roster() {
  return {
      {"alpha", 6, 2.0, Backend::kDense, 0},
      {"bravo", 10, 3.0, Backend::kPwl, 0},
      {"charlie", 16, 2.0, Backend::kAuto, 0},
      {"delta", 8, 1.0, Backend::kDense, 0},
      {"echo", 12, 2.0, Backend::kPwl, 0},
      {"foxtrot", 9, 3.0, Backend::kAuto, 0},
      {"golf", 7, 2.0, Backend::kAuto, 3},  // windowed lookahead tenant
  };
}

TEST(FleetChaosDrill, SurvivorsBitIdenticalAcrossBackendsAndThreads) {
  const int kSlots = 48;
  const FaultPlan plan{base_seed(), 7, PoisonKind::kNaN};
  SCOPED_TRACE("fault base seed " + std::to_string(plan.seed));

  const std::vector<DrillTenant> roster = drill_roster();
  std::vector<std::vector<double>> traces;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    traces.push_back(
        integer_trace(roster[i].m, kSlots, 1000 + static_cast<int>(i)));
  }

  const auto feed_and_drain = [&](FleetController& fleet) {
    for (const DrillTenant& t : roster) {
      TenantConfig config = basic_config(t.name, t.m, t.beta);
      config.backend = t.backend;
      config.window = t.window;
      config.checkpoint_every = 8;
      fleet.add_tenant(config);
    }
    for (int slot = 0; slot < kSlots; ++slot) {
      for (std::size_t i = 0; i < roster.size(); ++i) {
        fleet.offer(i, traces[i][static_cast<std::size_t>(slot)]);
      }
    }
    fleet.finish_streams();
    fleet.run_until_drained();
  };

  // The undisturbed reference.
  FleetController reference;
  feed_and_drain(reference);
  for (std::size_t i = 0; i < roster.size(); ++i) {
    ASSERT_EQ(reference.tenant(i).steps(),
              static_cast<std::uint64_t>(kSlots));
  }

  // Predicted casualty set — pure functions of (plan, ordinal), computable
  // before the drill runs and exact under any rotating seed.
  std::vector<std::vector<std::uint64_t>> corrupted;
  std::vector<std::vector<std::uint64_t>> killed;
  std::size_t predicted_quarantines = 0;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    corrupted.push_back(rs::scenario::corrupted_offers(
        plan, i, static_cast<std::uint64_t>(kSlots)));
    killed.push_back(rs::scenario::killed_attempts(
        plan, i, static_cast<std::uint64_t>(kSlots)));
    if (!corrupted.back().empty()) ++predicted_quarantines;
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    FleetOptions options;
    options.threads = threads;

    // Clean run at this thread count: tick partitioning must not change a
    // single decision.
    FleetController clean(options);
    feed_and_drain(clean);
    for (std::size_t i = 0; i < roster.size(); ++i) {
      ASSERT_EQ(clean.tenant(i).schedule(), reference.tenant(i).schedule())
          << roster[i].name;
    }

    // Disturbed run: the injector is live for both ingest and ticks.
    FleetController fleet(options);
    {
      const ScopedFaultInjection guard(rs::scenario::make_injector(plan));
      feed_and_drain(fleet);
    }

    for (std::size_t i = 0; i < roster.size(); ++i) {
      SCOPED_TRACE(roster[i].name);
      const TenantSession& tenant = fleet.tenant(i);
      const rs::fleet::TenantStats stats = tenant.stats();
      if (!corrupted[i].empty()) {
        // Poisoned in flight: quarantined at exactly the first corrupted
        // offer, before any slot was decided (ingest precedes ticks here).
        EXPECT_EQ(tenant.state(), TenantState::kQuarantined);
        EXPECT_NE(stats.quarantine_reason.find("invalid λ sample"),
                  std::string::npos)
            << stats.quarantine_reason;
        EXPECT_EQ(stats.offered, corrupted[i].front());
        EXPECT_EQ(tenant.steps(), 0u);
        EXPECT_TRUE(has_event(fleet.events(), i,
                              FleetEventKind::kQuarantined));
      } else {
        // Survivor: every kill was healed from the latest checkpoint and
        // the trajectory is bit-identical to the undisturbed run.
        EXPECT_NE(tenant.state(), TenantState::kQuarantined)
            << stats.quarantine_reason;
        EXPECT_EQ(tenant.steps(), static_cast<std::uint64_t>(kSlots));
        ASSERT_EQ(tenant.schedule(), reference.tenant(i).schedule());
        ASSERT_EQ(tenant.lower_bounds(), reference.tenant(i).lower_bounds());
        ASSERT_EQ(tenant.upper_bounds(), reference.tenant(i).upper_bounds());
        EXPECT_EQ(stats.recoveries > 0, !killed[i].empty());
        if (!killed[i].empty()) {
          EXPECT_TRUE(has_event(fleet.events(), i,
                                FleetEventKind::kRecovered));
        }
      }
    }
    EXPECT_EQ(fleet.stats().quarantined, predicted_quarantines);
  }
}

// ---------------------------------------------------------------------------
// The degradation ladder's far end
// ---------------------------------------------------------------------------

TEST(FleetLadder, PersistentFailuresDegradeThenQuarantine) {
  FleetController fleet;
  TenantConfig auto_config = basic_config("auto", 8);
  auto_config.backend = Backend::kAuto;
  auto_config.degrade_after = 1;
  auto_config.max_recoveries = 2;
  TenantConfig pwl_config = basic_config("pwl", 8);
  pwl_config.backend = Backend::kPwl;
  pwl_config.degrade_after = 1;
  pwl_config.max_recoveries = 2;
  const std::size_t a = fleet.add_tenant(auto_config);
  const std::size_t p = fleet.add_tenant(pwl_config);
  for (double lambda : integer_trace(8, 6, 5)) {
    fleet.offer(a, lambda);
    fleet.offer(p, lambda);
  }

  {  // Period 1: every slot attempt fails, so the ladder runs to its end.
    const ScopedFaultInjection guard(
        rs::scenario::make_injector(FaultPlan{base_seed(), 1,
                                              PoisonKind::kNaN}));
    fleet.run_until_drained();
  }

  const std::vector<FleetEvent> events = fleet.events();
  for (std::size_t i : {a, p}) {
    const TenantSession& tenant = fleet.tenant(i);
    EXPECT_EQ(tenant.state(), TenantState::kQuarantined);
    EXPECT_NE(
        tenant.stats().quarantine_reason.find("backend failure persisted"),
        std::string::npos)
        << tenant.stats().quarantine_reason;
    EXPECT_EQ(tenant.stats().recoveries, 2u);
    EXPECT_TRUE(has_event(events, i, FleetEventKind::kRecovered));
    EXPECT_TRUE(has_event(events, i, FleetEventKind::kQuarantined));
  }
  // The kAuto tenant took the dense rung on the way down; the kPwl tenant
  // has no dense rung (its tracker is pinned) and must not pretend to.
  EXPECT_TRUE(fleet.tenant(a).stats().degraded_to_dense);
  EXPECT_TRUE(has_event(events, a, FleetEventKind::kDegradedToDense));
  EXPECT_FALSE(fleet.tenant(p).stats().degraded_to_dense);
  EXPECT_FALSE(has_event(events, p, FleetEventKind::kDegradedToDense));
}

// ---------------------------------------------------------------------------
// Deadline pressure
// ---------------------------------------------------------------------------

TEST(FleetDeadline, TinyBudgetDefersButDrainsIdentically) {
  const int kSlots = 12;
  const int kTenants = 4;
  std::vector<std::vector<double>> traces;
  for (int i = 0; i < kTenants; ++i) {
    traces.push_back(integer_trace(8, kSlots, 300 + i));
  }
  const auto feed = [&](FleetController& fleet) {
    for (int i = 0; i < kTenants; ++i) {
      fleet.add_tenant(basic_config("tenant-" + std::to_string(i), 8));
    }
    for (int slot = 0; slot < kSlots; ++slot) {
      for (int i = 0; i < kTenants; ++i) {
        fleet.offer(static_cast<std::size_t>(i),
                    traces[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(slot)]);
      }
    }
  };

  FleetController reference;
  feed(reference);
  reference.run_until_drained();

  FleetOptions options;
  options.tick_budget_seconds = 1e-12;  // everything but the first defers
  FleetController fleet(options);
  feed(fleet);
  const rs::fleet::TickReport first = fleet.tick();
  EXPECT_EQ(first.due, static_cast<std::size_t>(kTenants));
  EXPECT_GE(first.advanced_tenants, 1u);  // the progress guarantee
  EXPECT_GT(first.deferred, 0u);
  fleet.run_until_drained();

  // Deferral changes when a slot is decided, never what.
  for (int i = 0; i < kTenants; ++i) {
    const std::size_t ordinal = static_cast<std::size_t>(i);
    EXPECT_EQ(fleet.tenant(ordinal).schedule(),
              reference.tenant(ordinal).schedule());
  }
  EXPECT_GT(fleet.stats().deferrals, 0u);
  bool any_deferred_event = false;
  for (const FleetEvent& e : fleet.events()) {
    if (e.kind == FleetEventKind::kDeferred) any_deferred_event = true;
  }
  EXPECT_TRUE(any_deferred_event);
}

// ---------------------------------------------------------------------------
// Process restart (persistent store)
// ---------------------------------------------------------------------------

TEST(FleetRestart, ResumesFromDiskAndContinuesBitIdentically) {
  const int kBefore = 10;
  const int kAfter = 8;
  const std::vector<double> trace = integer_trace(8, kBefore + kAfter, 42);
  TenantConfig config = basic_config("restart", 8);
  config.checkpoint_every = 4;

  // Uninterrupted reference over the whole stream.
  FleetController reference;
  reference.add_tenant(config);
  for (double lambda : trace) reference.offer(0, lambda);
  reference.run_until_drained();
  const std::vector<int> full_schedule = reference.tenant(0).schedule();

  const std::string dir = ::testing::TempDir() + "/rs_fleet_restart";
  std::filesystem::remove_all(dir);
  {  // First process: serve the head of the stream, then "crash".
    FleetOptions options;
    options.checkpoint_dir = dir;
    FleetController fleet(options);
    fleet.add_tenant(config);
    for (int t = 0; t < kBefore; ++t) {
      fleet.offer(0, trace[static_cast<std::size_t>(t)]);
    }
    fleet.run_until_drained();
    fleet.checkpoint_all();  // flush the off-cadence tail before the crash
  }

  // Second process over the same directory: the tenant resumes at slot 10
  // and serves the rest bit-identically to the uninterrupted run.
  FleetOptions options;
  options.checkpoint_dir = dir;
  FleetController fleet(options);
  fleet.add_tenant(config);
  EXPECT_EQ(fleet.tenant(0).steps(), static_cast<std::uint64_t>(kBefore));
  EXPECT_TRUE(has_event(fleet.events(), 0, FleetEventKind::kResumed));
  for (int t = kBefore; t < kBefore + kAfter; ++t) {
    fleet.offer(0, trace[static_cast<std::size_t>(t)]);
  }
  fleet.run_until_drained();
  const std::vector<int> resumed_tail = fleet.tenant(0).schedule();
  ASSERT_EQ(resumed_tail.size(), static_cast<std::size_t>(kAfter));
  for (int t = 0; t < kAfter; ++t) {
    EXPECT_EQ(resumed_tail[static_cast<std::size_t>(t)],
              full_schedule[static_cast<std::size_t>(kBefore + t)])
        << "slot " << kBefore + t;
  }
}

// ---------------------------------------------------------------------------
// Concurrent snapshot-while-advancing (never a torn checkpoint)
// ---------------------------------------------------------------------------

TEST(FleetConcurrency, SnapshotDuringAdvanceIsNeverTorn) {
  const int kSlots = 60;
  const int kM = 8;
  const double kBeta = 2.0;
  const std::vector<double> trace = integer_trace(kM, kSlots, 99);
  TenantConfig config = basic_config("hammered", kM, kBeta);

  // Reference trajectory (single-threaded, no snapshots).
  FleetController reference;
  reference.add_tenant(config);
  for (double lambda : trace) reference.offer(0, lambda);
  reference.run_until_drained();
  const std::vector<int> ref_schedule = reference.tenant(0).schedule();

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    FleetOptions options;
    options.threads = threads;
    FleetController fleet(options);
    fleet.add_tenant(config);
    // Siblings keep the engine's dispatch genuinely concurrent with the
    // snapshot hammer below.
    fleet.add_tenant(basic_config("sibling-a", 6));
    fleet.add_tenant(basic_config("sibling-b", 10));
    for (double lambda : trace) fleet.offer(0, lambda);
    for (double lambda : integer_trace(6, kSlots, 100)) fleet.offer(1, lambda);
    for (double lambda : integer_trace(10, kSlots, 101)) fleet.offer(2, lambda);

    std::atomic<bool> done{false};
    std::vector<std::vector<std::uint8_t>> captured;
    // do-while: at least one capture even if this thread is only scheduled
    // after the drain finishes (single-core boxes).
    std::thread hammer([&] {
      do {
        captured.push_back(fleet.tenant(0).snapshot_bytes());
        std::this_thread::yield();
      } while (!done.load(std::memory_order_acquire) &&
               captured.size() < 4096);
    });
    // Tick manually with yields so the hammer interleaves with the steps
    // even without a spare core.
    for (int t = 0; t < kSlots; ++t) {
      fleet.tick();
      std::this_thread::yield();
    }
    EXPECT_EQ(fleet.run_until_drained(), 0u);
    done.store(true, std::memory_order_release);
    hammer.join();
    ASSERT_FALSE(captured.empty());

    // Every captured snapshot must decode cleanly (never torn) to a commit
    // boundary, and restoring it + replaying the remaining stream must land
    // exactly on the reference trajectory (pre- or post-state of whatever
    // step it raced).  Snapshots at the same boundary are byte-identical,
    // so validating one per distinct slot count covers them all.
    std::map<std::uint64_t, std::vector<std::uint8_t>> by_steps;
    for (std::vector<std::uint8_t>& bytes : captured) {
      const TenantCheckpoint ck = TenantSession::decode_checkpoint(bytes);
      ASSERT_LE(ck.steps, static_cast<std::uint64_t>(kSlots));
      ASSERT_FALSE(ck.degraded);
      const auto [it, inserted] = by_steps.emplace(ck.steps, bytes);
      if (!inserted) {
        ASSERT_EQ(it->second, bytes);
      }
    }
    for (const auto& [steps, bytes] : by_steps) {
      const TenantCheckpoint ck = TenantSession::decode_checkpoint(bytes);
      rs::online::Lcp session(config.backend);
      session.restore(rs::online::OnlineContext{kM, kBeta}, ck.session);
      for (std::uint64_t t = steps; t < static_cast<std::uint64_t>(kSlots);
           ++t) {
        const int x = session.decide(
            config.cost_of(trace[static_cast<std::size_t>(t)]), {});
        ASSERT_EQ(x, ref_schedule[static_cast<std::size_t>(t)])
            << "snapshot at slot " << steps << ", replayed slot " << t;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Event log bounds
// ---------------------------------------------------------------------------

TEST(FleetController, EventLogIsBoundedAndCountsDrops) {
  FleetOptions options;
  options.max_events = 1;
  FleetController fleet(options);
  TenantConfig config = basic_config("chatty", 6);
  config.checkpoint_every = 1;  // one kCheckpointed event per slot
  fleet.add_tenant(config);
  for (double lambda : integer_trace(6, 8, 8)) fleet.offer(0, lambda);
  fleet.run_until_drained();
  EXPECT_EQ(fleet.events().size(), 1u);
  EXPECT_GT(fleet.dropped_events(), 0u);
}

}  // namespace
