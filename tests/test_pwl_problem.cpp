// The PwlProblem conversion cache and the consumers rewired onto it:
// exactly one as_convex_pwl conversion per slot per batch (instrumented
// regression tests for the windowed-LCP sliding window and the engine's
// capability probe), plus the convex-PWL extensions of bounded_dp and
// the low-memory divide-and-conquer, which must reproduce their dense
// paths' schedules — bit-identically on integer-valued instances, with
// the documented plateau-tie caveat on the flat_regions family
// (DESIGN.md §8).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "rightsizer/rightsizer.hpp"

namespace {

using rs::core::ConvexPwl;
using rs::core::CostPtr;
using rs::core::Problem;
using rs::core::PwlProblem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::workload::InstanceFamily;

// Forwarding wrapper counting as_convex_pwl calls; the conversion-count
// regression tests pin the one-conversion-per-slot invariant with it.
class CountingCost final : public rs::core::CostFunction {
 public:
  CountingCost(CostPtr base, std::shared_ptr<std::atomic<int>> conversions)
      : base_(std::move(base)), conversions_(std::move(conversions)) {}
  double at(int x) const override { return base_->at(x); }
  void eval_row(int m, std::span<double> out) const override {
    base_->eval_row(m, out);
  }
  bool is_convex() const override { return base_->is_convex(); }
  std::string name() const override {
    return "counting(" + base_->name() + ")";
  }

 protected:
  std::optional<ConvexPwl> as_convex_pwl_impl(
      int m, int max_breakpoints) const override {
    conversions_->fetch_add(1, std::memory_order_relaxed);
    return base_->as_convex_pwl(m, max_breakpoints);
  }

 private:
  CostPtr base_;
  std::shared_ptr<std::atomic<int>> conversions_;
};

struct CountedInstance {
  Problem problem;
  std::vector<std::shared_ptr<std::atomic<int>>> conversions;  // per slot
};

CountedInstance counted_affine_instance(int T, int m) {
  rs::util::Rng rng(12345);
  std::vector<CostPtr> fs;
  std::vector<std::shared_ptr<std::atomic<int>>> counters;
  for (int t = 0; t < T; ++t) {
    auto counter = std::make_shared<std::atomic<int>>(0);
    fs.push_back(std::make_shared<CountingCost>(
        std::make_shared<rs::core::AffineAbsCost>(
            static_cast<double>(rng.uniform_int(1, 3)),
            static_cast<double>(rng.uniform_int(0, m))),
        counter));
    counters.push_back(std::move(counter));
  }
  return {Problem(m, 2.0, std::move(fs)), std::move(counters)};
}

// Integer-valued convex tables: all downstream arithmetic is exact in
// double, so PWL and dense paths must agree bit for bit, tie-breaks
// included.
Problem integer_instance(rs::util::Rng& rng, int T, int m, double beta) {
  std::vector<CostPtr> fs;
  for (int t = 0; t < T; ++t) {
    std::vector<double> values(static_cast<std::size_t>(m) + 1);
    double v = static_cast<double>(rng.uniform_int(0, 6));
    double slope = static_cast<double>(rng.uniform_int(0, 4)) - 2.0;
    values[0] = v;
    for (int x = 1; x <= m; ++x) {
      slope += static_cast<double>(rng.uniform_int(0, 2));
      v += slope;
      values[static_cast<std::size_t>(x)] = std::max(v, 0.0);
      v = values[static_cast<std::size_t>(x)];
    }
    fs.push_back(std::make_shared<rs::core::TableCost>(std::move(values)));
  }
  return Problem(m, beta, std::move(fs));
}

std::vector<std::vector<int>> grid_columns(const Problem& p, int stride) {
  return std::vector<std::vector<int>>(
      static_cast<std::size_t>(p.horizon()),
      rs::core::multiples_of(stride, p.max_servers()));
}

}  // namespace

// --- the cache itself --------------------------------------------------------

TEST(PwlProblem, TryConvertCachesEverySlotExactlyOnce) {
  const CountedInstance counted = counted_affine_instance(9, 7);
  const std::optional<PwlProblem> pwl =
      PwlProblem::try_convert(counted.problem);
  ASSERT_TRUE(pwl.has_value());
  EXPECT_EQ(pwl->horizon(), 9);
  EXPECT_EQ(pwl->max_servers(), 7);
  EXPECT_DOUBLE_EQ(pwl->beta(), 2.0);
  EXPECT_EQ(pwl->conversions(), 9u);
  for (const auto& counter : counted.conversions) {
    EXPECT_EQ(counter->load(), 1);
  }
  // The cached forms are the slots' own conversions.
  for (int t = 1; t <= 9; ++t) {
    const auto direct = counted.problem.f(t).as_convex_pwl(7);
    ASSERT_TRUE(direct.has_value());
    for (int x = 0; x <= 7; ++x) {
      EXPECT_EQ(pwl->form(t).value_at(x), direct->value_at(x))
          << "t=" << t << " x=" << x;
    }
  }
}

TEST(PwlProblem, TryConvertDeclinesNonCompactInstances) {
  // An opaque slot anywhere sinks the whole conversion.
  std::vector<CostPtr> fs = {
      std::make_shared<rs::core::AffineAbsCost>(1.0, 2.0),
      std::make_shared<rs::core::FunctionCost>([](int x) { return 1.0 * x; }),
  };
  EXPECT_FALSE(PwlProblem::try_convert(Problem(5, 1.0, std::move(fs))));

  // The default budget is the m-relative auto rule: a quadratic at large m
  // needs one breakpoint per state and must decline there, but convert
  // under an explicit unbounded budget.
  std::vector<CostPtr> quad = {
      std::make_shared<rs::core::QuadraticCost>(0.5, 50.0)};
  const Problem q(200, 1.0, std::move(quad));
  EXPECT_FALSE(PwlProblem::try_convert(q));
  EXPECT_TRUE(
      PwlProblem::try_convert(q, rs::core::kUnboundedBreakpoints).has_value());

  // T = 0 converts trivially.
  EXPECT_TRUE(PwlProblem::try_convert(Problem(3, 1.0, {})).has_value());
}

TEST(PwlProblem, ParallelConversionMatchesSequential) {
  // 600 slots crosses the pool-parallel threshold; forms must be the same
  // as slot-by-slot conversion, and a late non-convertible slot must still
  // sink the build.
  const int T = 600;
  const int m = 9;
  rs::util::Rng rng(77);
  std::vector<CostPtr> fs;
  for (int t = 0; t < T; ++t) {
    fs.push_back(std::make_shared<rs::core::AffineAbsCost>(
        rng.uniform(0.25, 2.0), static_cast<double>(rng.uniform_int(0, m))));
  }
  const Problem p(m, 1.5, fs);
  const std::optional<PwlProblem> pwl = PwlProblem::try_convert(p);
  ASSERT_TRUE(pwl.has_value());
  for (int t = 1; t <= T; t += 37) {
    const auto direct = p.f(t).as_convex_pwl(m);
    for (int x = 0; x <= m; ++x) {
      EXPECT_EQ(pwl->form(t).value_at(x), direct->value_at(x));
    }
  }
  fs[550] = std::make_shared<rs::core::FunctionCost>(
      [](int x) { return 2.0 * x; });
  EXPECT_FALSE(PwlProblem::try_convert(Problem(m, 1.5, std::move(fs))));
}

// --- ConvexPwl batch evaluation and grid resampling --------------------------

TEST(ConvexPwlEval, SortedBatchMatchesValueAt) {
  rs::util::Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 14));
    std::vector<double> values = rs::workload::random_convex_table(rng, m);
    const int prefix = static_cast<int>(rng.uniform_int(0, m / 2));
    for (int x = 0; x < prefix; ++x) values[static_cast<std::size_t>(x)] = kInf;
    const auto form = rs::core::TableCost(values).as_convex_pwl(m);
    ASSERT_TRUE(form.has_value());
    // All positions, including out-of-domain ones past both ends.
    std::vector<int> xs;
    for (int x = 0; x <= m; ++x) {
      if (rng.uniform(0.0, 1.0) < 0.7) xs.push_back(x);
    }
    xs.push_back(m);
    std::vector<double> out(xs.size());
    form->eval_at_sorted(xs, out);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double expected = form->value_at(xs[i]);
      if (std::isinf(expected)) {
        EXPECT_TRUE(std::isinf(out[i])) << "x=" << xs[i];
      } else {
        EXPECT_NEAR(out[i], expected, 1e-12 * std::max(1.0, expected))
            << "x=" << xs[i];
      }
    }
  }
  // The infinite form evaluates to +inf everywhere.
  const ConvexPwl none = ConvexPwl::infinite();
  std::vector<double> out(3);
  none.eval_at_sorted(std::vector<int>{0, 1, 2}, out);
  for (double v : out) EXPECT_TRUE(std::isinf(v));
}

TEST(ConvexPwlEval, ResampleStrideMatchesGridValues) {
  rs::util::Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(4, 40));
    std::vector<double> values = rs::workload::random_convex_table(rng, m);
    const int prefix = static_cast<int>(rng.uniform_int(0, m / 3));
    const int cut = static_cast<int>(rng.uniform_int(2 * m / 3, m));
    for (int x = 0; x < prefix; ++x) values[static_cast<std::size_t>(x)] = kInf;
    for (int x = cut + 1; x <= m; ++x) {
      values[static_cast<std::size_t>(x)] = kInf;
    }
    const auto form = rs::core::TableCost(values).as_convex_pwl(m);
    ASSERT_TRUE(form.has_value());
    for (int stride : {1, 2, 3, 5}) {
      const ConvexPwl grid = form->resample_stride(stride);
      for (int y = 0; y * stride <= m; ++y) {
        const double expected = form->value_at(y * stride);
        if (std::isinf(expected)) {
          EXPECT_TRUE(std::isinf(grid.value_at(y)))
              << "stride=" << stride << " y=" << y;
        } else {
          EXPECT_NEAR(grid.value_at(y), expected,
                      1e-9 * std::max(1.0, std::fabs(expected)))
              << "stride=" << stride << " y=" << y;
        }
      }
    }
  }
  // No grid point inside the domain: infinite.
  const auto narrow =
      rs::core::TableCost({kInf, 1.0, 2.0, kInf}).as_convex_pwl(3);
  ASSERT_TRUE(narrow.has_value());
  EXPECT_TRUE(narrow->resample_stride(4).is_infinite());
  EXPECT_TRUE(ConvexPwl::infinite().resample_stride(2).is_infinite());
}

// --- cached replays match their streaming counterparts -----------------------

TEST(PwlProblem, CachedLcpAndBoundsMatchStreamingBackends) {
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    rs::util::Rng rng(401 + static_cast<std::uint64_t>(family));
    const Problem p =
        rs::workload::random_instance(rng, family, 17, 8, rng.uniform(0.5, 2.5));
    const std::optional<PwlProblem> pwl =
        PwlProblem::try_convert(p, rs::core::kUnboundedBreakpoints);
    ASSERT_TRUE(pwl.has_value());

    rs::online::Lcp forced(rs::offline::WorkFunctionTracker::Backend::kPwl);
    EXPECT_EQ(rs::online::run_lcp_pwl(*pwl), rs::online::run_online(forced, p))
        << rs::workload::family_name(family);

    const rs::offline::BoundTrajectory cached = rs::offline::compute_bounds(*pwl);
    const rs::offline::BoundTrajectory streamed = rs::offline::compute_bounds(
        p, rs::offline::WorkFunctionTracker::Backend::kPwl);
    EXPECT_EQ(cached.lower, streamed.lower);
    EXPECT_EQ(cached.upper, streamed.upper);

    const rs::offline::DpSolver dp;
    const rs::offline::OfflineResult cached_dp = dp.solve(*pwl);
    EXPECT_EQ(dp.solve_cost(*pwl), cached_dp.cost);
    EXPECT_NEAR(rs::core::total_cost(p, cached_dp.schedule), cached_dp.cost,
                1e-9 * std::max(1.0, cached_dp.cost));
    EXPECT_NEAR(cached_dp.cost, rs::offline::DpSolver().solve_cost(p),
                1e-9 * std::max(1.0, cached_dp.cost));
  }
}

// --- conversion-count regressions (the bugfixes) -----------------------------

TEST(WindowedLcp, SlidingWindowConvertsEachSlotExactlyOnce) {
  // Before the sliding form cache, a lookahead slot was converted on every
  // slide — up to w+1 conversions per slot (once per window position plus
  // once as the revealed cost).
  for (int window : {1, 3, 5}) {
    const CountedInstance counted = counted_affine_instance(14, 8);
    rs::online::WindowedLcp lcp;  // kAuto, PWL path throughout
    const Schedule schedule =
        rs::online::run_online(lcp, counted.problem, window);
    EXPECT_EQ(schedule.size(), 14u);
    for (std::size_t t = 0; t < counted.conversions.size(); ++t) {
      EXPECT_EQ(counted.conversions[t]->load(), 1)
          << "slot " << t + 1 << " window " << window;
    }
  }
}

TEST(WindowedLcp, SlidingCacheKeepsSchedulesIdentical) {
  // The cache must be a pure memoization: schedules equal the forced-PWL
  // and dense replays on integer instances (exact ties).
  rs::util::Rng rng(59);
  for (int trial = 0; trial < 6; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(4, 16));
    const int m = static_cast<int>(rng.uniform_int(2, 9));
    const Problem p = integer_instance(rng, T, m, 1.0);
    for (int window : {0, 2, 4}) {
      rs::online::WindowedLcp pwl_lcp(
          rs::offline::WorkFunctionTracker::Backend::kPwl);
      rs::online::WindowedLcp dense_lcp(
          rs::offline::WorkFunctionTracker::Backend::kDense);
      EXPECT_EQ(rs::online::run_online(pwl_lcp, p, window),
                rs::online::run_online(dense_lcp, p, window))
          << "trial=" << trial << " w=" << window;
    }
  }
}

TEST(SolverEngine, ProbePopulatesCacheOneConversionPerSlotPerBatch) {
  const CountedInstance counted = counted_affine_instance(11, 6);
  const Problem& p = counted.problem;
  // Two jobs of every kind on the same instance: the probe's conversion is
  // the only one — all eight jobs replay from the shared cache.
  std::vector<rs::engine::SolveJob> jobs;
  for (int copy = 0; copy < 2; ++copy) {
    for (rs::engine::SolverKind kind :
         {rs::engine::SolverKind::kDpCost, rs::engine::SolverKind::kDpSchedule,
          rs::engine::SolverKind::kLcp, rs::engine::SolverKind::kLowMemory}) {
      jobs.push_back(rs::engine::SolveJob{&p, nullptr, kind});
    }
  }
  const rs::engine::BatchResult batch =
      rs::engine::SolverEngine({.threads = 1}).run(jobs);
  for (std::size_t t = 0; t < counted.conversions.size(); ++t) {
    EXPECT_EQ(counted.conversions[t]->load(), 1) << "slot " << t + 1;
  }
  EXPECT_EQ(batch.stats.pwl_conversions, 11u);
  EXPECT_EQ(batch.stats.pwl_backed, jobs.size());
  EXPECT_EQ(batch.stats.dense_tables_built, 0u);
  // And the batch still solves correctly: the DP cost prices the LCP-free
  // optimum of the same instance on every copy.
  EXPECT_EQ(batch.outcomes[0].cost, rs::offline::DpSolver().solve_cost(p));
  EXPECT_EQ(batch.outcomes[0].cost, batch.outcomes[4].cost);
}

// --- bounded_dp on the cache -------------------------------------------------

TEST(BoundedDpPwl, GridColumnsMatchDenseAcrossFamilies) {
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    rs::util::Rng rng(509 + static_cast<std::uint64_t>(family));
    for (int trial = 0; trial < 3; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 18));
      const int m = static_cast<int>(rng.uniform_int(2, 12));
      const Problem p = rs::workload::random_instance(rng, family, T, m,
                                                      rng.uniform(0.4, 2.5));
      const std::optional<PwlProblem> pwl =
          PwlProblem::try_convert(p, rs::core::kUnboundedBreakpoints);
      ASSERT_TRUE(pwl.has_value()) << rs::workload::family_name(family);
      for (int stride : {1, 2}) {
        const std::vector<std::vector<int>> states = grid_columns(p, stride);
        const rs::offline::OfflineResult dense =
            rs::offline::solve_bounded(p, states);
        const rs::offline::OfflineResult fast =
            rs::offline::solve_bounded(p, states, *pwl);
        if (std::isinf(dense.cost)) {
          EXPECT_TRUE(std::isinf(fast.cost));
          continue;
        }
        EXPECT_NEAR(fast.cost, dense.cost, 1e-9 * std::max(1.0, dense.cost))
            << rs::workload::family_name(family) << " stride=" << stride;
        if (family == InstanceFamily::kFlatRegions) {
          // Exact cost plateaus: ties may resolve to different (equally
          // optimal) grid states; assert optimality instead of position
          // (the bit-exact tie contract is covered on integer instances).
          EXPECT_NEAR(rs::core::total_cost(p, fast.schedule), dense.cost,
                      1e-9 * std::max(1.0, dense.cost));
        } else {
          EXPECT_EQ(fast.schedule, dense.schedule)
              << rs::workload::family_name(family) << " stride=" << stride;
        }
      }
    }
  }
}

TEST(BoundedDpPwl, GridColumnsBitIdenticalOnIntegerInstances) {
  rs::util::Rng rng(97);
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 15));
    const int m = static_cast<int>(rng.uniform_int(2, 12));
    const Problem p = integer_instance(rng, T, m, 2.0);
    const std::optional<PwlProblem> pwl =
        PwlProblem::try_convert(p, rs::core::kUnboundedBreakpoints);
    ASSERT_TRUE(pwl.has_value());
    for (int k : {0, 1, 2}) {
      const rs::offline::OfflineResult dense =
          rs::offline::solve_phi_restricted(p, k);
      const rs::offline::OfflineResult fast =
          rs::offline::solve_phi_restricted(p, k, *pwl);
      EXPECT_EQ(fast.cost, dense.cost) << "trial=" << trial << " k=" << k;
      EXPECT_EQ(fast.schedule, dense.schedule)
          << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(BoundedDpPwl, IrregularColumnsEvaluateFromFormsBitIdentically) {
  // Non-grid candidate sets cannot take the convex label path; they must
  // still fill their columns from the cache (no re-conversion) and agree
  // with the dense gather exactly on integer instances.
  rs::util::Rng rng(103);
  for (int trial = 0; trial < 8; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(3, 10));
    const Problem p = integer_instance(rng, T, m, 1.0);
    const std::optional<PwlProblem> pwl =
        PwlProblem::try_convert(p, rs::core::kUnboundedBreakpoints);
    ASSERT_TRUE(pwl.has_value());
    std::vector<std::vector<int>> states;
    for (int t = 0; t < T; ++t) {
      std::vector<int> column;
      for (int x = 0; x <= m; ++x) {
        if (rng.uniform(0.0, 1.0) < 0.6) column.push_back(x);
      }
      if (column.empty()) column.push_back(static_cast<int>(
          rng.uniform_int(0, m)));
      states.push_back(std::move(column));
    }
    rs::offline::BoundedDpStats dense_stats;
    rs::offline::BoundedDpStats fast_stats;
    const rs::offline::OfflineResult dense =
        rs::offline::solve_bounded(p, states, &dense_stats);
    const rs::offline::OfflineResult fast =
        rs::offline::solve_bounded(p, states, *pwl, &fast_stats);
    EXPECT_EQ(fast.cost, dense.cost) << trial;
    EXPECT_EQ(fast.schedule, dense.schedule) << trial;
    EXPECT_EQ(fast_stats.function_evaluations,
              dense_stats.function_evaluations);
    EXPECT_EQ(fast_stats.transitions_evaluated,
              dense_stats.transitions_evaluated);
  }
}

TEST(BoundedDpPwl, ValidatesMismatchedCache) {
  rs::util::Rng rng(7);
  const Problem p = integer_instance(rng, 4, 5, 1.0);
  const Problem q = integer_instance(rng, 5, 5, 1.0);
  const std::optional<PwlProblem> pwl =
      PwlProblem::try_convert(q, rs::core::kUnboundedBreakpoints);
  ASSERT_TRUE(pwl.has_value());
  EXPECT_THROW(rs::offline::solve_bounded(p, grid_columns(p, 1), *pwl),
               std::invalid_argument);
}

// --- low-memory divide-and-conquer on the cache ------------------------------

TEST(LowMemoryPwl, MatchesDenseAcrossFamilies) {
  const rs::offline::LowMemorySolver dense_solver;  // kDense
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    rs::util::Rng rng(607 + static_cast<std::uint64_t>(family));
    for (int trial = 0; trial < 3; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 20));
      const int m = static_cast<int>(rng.uniform_int(1, 11));
      const Problem p = rs::workload::random_instance(rng, family, T, m,
                                                      rng.uniform(0.4, 2.5));
      const std::optional<PwlProblem> pwl =
          PwlProblem::try_convert(p, rs::core::kUnboundedBreakpoints);
      ASSERT_TRUE(pwl.has_value());
      const rs::offline::OfflineResult dense = dense_solver.solve(p);
      const rs::offline::OfflineResult fast = dense_solver.solve(*pwl);
      EXPECT_NEAR(fast.cost, dense.cost, 1e-9 * std::max(1.0, dense.cost))
          << rs::workload::family_name(family);
      if (family == InstanceFamily::kFlatRegions) {
        EXPECT_NEAR(rs::core::total_cost(p, fast.schedule), dense.cost,
                    1e-9 * std::max(1.0, dense.cost));
      } else {
        EXPECT_EQ(fast.schedule, dense.schedule)
            << rs::workload::family_name(family) << " T=" << T << " m=" << m;
      }
    }
  }
}

TEST(LowMemoryPwl, BitIdenticalOnIntegerInstances) {
  rs::util::Rng rng(113);
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 18));
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    const Problem p = integer_instance(rng, T, m, 2.0);
    const std::optional<PwlProblem> pwl =
        PwlProblem::try_convert(p, rs::core::kUnboundedBreakpoints);
    ASSERT_TRUE(pwl.has_value());
    const rs::offline::OfflineResult dense =
        rs::offline::LowMemorySolver().solve(p);
    const rs::offline::OfflineResult fast =
        rs::offline::LowMemorySolver().solve(*pwl);
    EXPECT_EQ(fast.cost, dense.cost) << trial;
    EXPECT_EQ(fast.schedule, dense.schedule) << trial;
  }
}

TEST(LowMemoryPwl, ConvexAutoBackendSelectsAndFallsBack) {
  // Compact instance: kConvexAuto converts once per slot and runs PWL.
  const CountedInstance counted = counted_affine_instance(10, 7);
  const rs::offline::LowMemorySolver auto_solver(
      rs::offline::LowMemorySolver::Backend::kConvexAuto);
  const rs::offline::OfflineResult fast = auto_solver.solve(counted.problem);
  for (const auto& counter : counted.conversions) {
    EXPECT_EQ(counter->load(), 1);
  }
  const rs::offline::OfflineResult dense =
      rs::offline::LowMemorySolver().solve(counted.problem);
  EXPECT_NEAR(fast.cost, dense.cost, 1e-9 * std::max(1.0, dense.cost));
  EXPECT_EQ(fast.schedule, dense.schedule);

  // Opaque instance: kConvexAuto falls back to the dense path.
  std::vector<CostPtr> fs = {
      std::make_shared<rs::core::FunctionCost>([](int x) { return 1.0 * x; }),
      std::make_shared<rs::core::FunctionCost>(
          [](int x) { return 2.0 * (x > 2 ? x - 2 : 2 - x); }),
  };
  const Problem opaque(5, 1.0, std::move(fs));
  EXPECT_EQ(auto_solver.solve(opaque).schedule,
            rs::offline::LowMemorySolver().solve(opaque).schedule);
}

TEST(LowMemoryPwl, HandlesEdgeInstances) {
  const rs::offline::LowMemorySolver solver;
  const Problem empty(4, 1.0, {});
  const auto empty_pwl = PwlProblem::try_convert(empty);
  ASSERT_TRUE(empty_pwl.has_value());
  EXPECT_EQ(solver.solve(*empty_pwl).cost, 0.0);
  EXPECT_TRUE(solver.solve(*empty_pwl).schedule.empty());

  const Problem tiny = rs::core::make_table_problem(0, 1.0, {{2.0}, {3.0}});
  const auto tiny_pwl =
      PwlProblem::try_convert(tiny, rs::core::kUnboundedBreakpoints);
  ASSERT_TRUE(tiny_pwl.has_value());
  const rs::offline::OfflineResult r = solver.solve(*tiny_pwl);
  EXPECT_EQ(r.cost, 5.0);
  EXPECT_EQ(r.schedule, Schedule({0, 0}));

  const Problem infeasible = rs::core::make_table_problem(
      2, 1.0, {{1.0, 1.0, 1.0}, {kInf, kInf, kInf}});
  const auto dead_pwl =
      PwlProblem::try_convert(infeasible, rs::core::kUnboundedBreakpoints);
  ASSERT_TRUE(dead_pwl.has_value());
  const rs::offline::OfflineResult dead = solver.solve(*dead_pwl);
  EXPECT_TRUE(std::isinf(dead.cost));
  EXPECT_TRUE(dead.schedule.empty());
}

// --- the linear-tariff restricted model rides the PWL path -------------------

TEST(LinearLoadPwl, TariffInstancesRideEveryPwlConsumer) {
  // Integer tariffs and workloads: every backend's arithmetic is exact, so
  // all cross-backend comparisons are bit-tight.
  rs::util::Rng rng(131);
  for (int trial = 0; trial < 5; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(3, 16));
    const int m = static_cast<int>(rng.uniform_int(4, 12));
    std::vector<CostPtr> fs;
    for (int t = 0; t < T; ++t) {
      fs.push_back(std::make_shared<rs::core::LinearLoadSlotCost>(
          static_cast<double>(rng.uniform_int(1, 3)),
          static_cast<double>(rng.uniform_int(0, 4)),
          static_cast<double>(rng.uniform_int(0, m / 2))));
    }
    const Problem p(m, static_cast<double>(rng.uniform_int(1, 4)),
                    std::move(fs));
    // The family admits the compact form under the *auto* budget (zero
    // breakpoints), so the engine and trackers select PWL on their own.
    EXPECT_TRUE(rs::core::admits_compact_pwl(p));
    const std::optional<PwlProblem> pwl = PwlProblem::try_convert(p);
    ASSERT_TRUE(pwl.has_value());

    rs::online::Lcp dense_lcp(rs::offline::WorkFunctionTracker::Backend::kDense);
    EXPECT_EQ(rs::online::run_lcp_pwl(*pwl),
              rs::online::run_online(dense_lcp, p));

    EXPECT_EQ(rs::offline::DpSolver().solve_cost(*pwl),
              rs::offline::DpSolver().solve_cost(p));

    EXPECT_EQ(rs::offline::LowMemorySolver().solve(*pwl).schedule,
              rs::offline::LowMemorySolver().solve(p).schedule);

    const std::vector<std::vector<int>> states = grid_columns(p, 1);
    EXPECT_EQ(rs::offline::solve_bounded(p, states, *pwl).schedule,
              rs::offline::solve_bounded(p, states).schedule);
  }
}
