// Dense evaluation layer: equivalence of the batched row path with the seed
// per-point path.
//
// Every CostFunction::eval_row override must produce bit-identical values
// to at(), and every dense-backed solver must return bit-identical cost and
// schedule to the same solver driven through per-point evaluation.  The
// per-point oracle wraps each f_t in a FunctionCost whose eval_row is the
// default at()-loop, so running a solver on the wrapped instance exercises
// exactly the seed evaluation path on exactly the same values.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "rightsizer/rightsizer.hpp"

namespace {

using rs::core::CostPtr;
using rs::core::DenseProblem;
using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;

// Rewraps every slot cost in a FunctionCost so all evaluation funnels
// through the default per-point eval_row loop (the seed path), with values
// identical to the original by construction.
Problem per_point_view(const Problem& p) {
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(p.horizon()));
  for (int t = 1; t <= p.horizon(); ++t) {
    fs.push_back(std::make_shared<rs::core::FunctionCost>(
        [f = p.f_ptr(t)](int x) { return f->at(x); }, "per_point"));
  }
  return Problem(p.max_servers(), p.beta(), std::move(fs));
}

std::vector<double> row_by_at(const rs::core::CostFunction& f, int m) {
  std::vector<double> out(static_cast<std::size_t>(m) + 1);
  for (int x = 0; x <= m; ++x) out[static_cast<std::size_t>(x)] = f.at(x);
  return out;
}

std::vector<double> row_by_eval(const rs::core::CostFunction& f, int m) {
  std::vector<double> out(static_cast<std::size_t>(m) + 1);
  f.eval_row(m, out);
  return out;
}

struct SizeCase {
  int T;
  int m;
  std::uint64_t seed;
};

const SizeCase kSizes[] = {{7, 5, 11}, {23, 16, 12}, {9, 1, 13}, {40, 9, 14}};

// Decorator stack over random convex tables: Scaled(Stride(Padded(Table))),
// the chain produced by the Section-2.2/2.3 instance transforms.
Problem decorated_problem(rs::util::Rng& rng, int T, int m, int stride) {
  std::vector<CostPtr> fs;
  fs.reserve(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    auto table = std::make_shared<rs::core::TableCost>(
        rs::workload::random_convex_table(rng, m * stride));
    auto padded = std::make_shared<rs::core::PaddedCost>(table, m * stride);
    auto strided = std::make_shared<rs::core::StrideCost>(padded, stride);
    fs.push_back(std::make_shared<rs::core::ScaledCost>(strided, 0.5));
  }
  return Problem(m, 1.5, std::move(fs));
}

}  // namespace

// --- eval_row vs at, per family --------------------------------------------

TEST(EvalRow, MatchesAtForConcreteFamilies) {
  const int m = 17;
  auto fn = std::make_shared<const std::function<double(double)>>(
      [](double z) { return 0.25 + z * z; });
  const std::vector<CostPtr> functions = {
      std::make_shared<rs::core::TableCost>(
          std::vector<double>{3.0, 1.0, 2.5, 7.0}),  // shorter than m: extends
      std::make_shared<rs::core::AffineAbsCost>(0.75, 4.3, 0.2),
      std::make_shared<rs::core::QuadraticCost>(0.31, 6.7, 1.1),
      std::make_shared<rs::core::FunctionCost>(
          [](int x) { return static_cast<double>(x) * 0.1 + 2.0; }),
      std::make_shared<rs::core::RestrictedSlotCost>(fn, 4.7),
      std::make_shared<rs::core::RestrictedSlotCost>(fn, 0.0),
  };
  for (const CostPtr& f : functions) {
    EXPECT_EQ(row_by_eval(*f, m), row_by_at(*f, m)) << f->name();
    EXPECT_EQ(row_by_eval(*f, 0), row_by_at(*f, 0)) << f->name() << " m=0";
  }
}

TEST(EvalRow, MatchesAtThroughDecoratorChains) {
  rs::util::Rng rng(77);
  for (int stride : {1, 2, 3, 5, 7}) {  // bulk path (<=4) and gather path
    const int m = 12;
    auto table = std::make_shared<rs::core::TableCost>(
        rs::workload::random_convex_table(rng, m * stride + 3));
    auto padded = std::make_shared<rs::core::PaddedCost>(table, m * stride);
    auto strided = std::make_shared<rs::core::StrideCost>(padded, stride);
    auto scaled = std::make_shared<rs::core::ScaledCost>(strided, 1.0 / 3.0);
    EXPECT_EQ(row_by_eval(*scaled, m), row_by_at(*scaled, m))
        << "stride=" << stride;
    // Padding shorter than the requested row: the extension branch.
    auto short_padded = std::make_shared<rs::core::PaddedCost>(table, m / 2);
    EXPECT_EQ(row_by_eval(*short_padded, m), row_by_at(*short_padded, m));
  }
}

TEST(EvalRow, InfinitePrefixAndSuffixRows) {
  const std::vector<std::vector<double>> tables = {
      {kInf, kInf, 1.0, 2.0, 4.0},       // infeasible prefix
      {1.0, 2.0, kInf, kInf, kInf},      // infeasible suffix
      {kInf, kInf, kInf},                // all-infinite
      {kInf, 3.0, kInf},                 // single feasible state
  };
  for (const auto& values : tables) {
    const rs::core::TableCost f(values);
    const int m = static_cast<int>(values.size()) - 1;
    EXPECT_EQ(row_by_eval(f, m), row_by_at(f, m));
    EXPECT_EQ(row_by_eval(f, m + 4), row_by_at(f, m + 4));  // extension
  }
}

// --- DenseProblem ------------------------------------------------------------

TEST(DenseProblem, RowsAndMinimizersMatchPerPointScans) {
  rs::util::Rng rng(5);
  for (rs::workload::InstanceFamily family :
       rs::workload::all_instance_families()) {
    for (const SizeCase& size : kSizes) {
      rs::util::Rng instance_rng(size.seed);
      const Problem p = rs::workload::random_instance(instance_rng, family,
                                                      size.T, size.m, 2.0);
      const DenseProblem eager(p);
      const DenseProblem lazy(p, DenseProblem::Mode::kLazy);
      ASSERT_EQ(eager.horizon(), p.horizon());
      ASSERT_EQ(eager.max_servers(), p.max_servers());
      for (int t = 1; t <= p.horizon(); ++t) {
        const std::vector<double> expected = row_by_at(p.f(t), p.max_servers());
        const std::span<const double> eager_row = eager.row(t);
        const std::span<const double> lazy_row = lazy.row(t);
        for (int x = 0; x <= p.max_servers(); ++x) {
          EXPECT_EQ(eager_row[static_cast<std::size_t>(x)],
                    expected[static_cast<std::size_t>(x)]);
          EXPECT_EQ(lazy_row[static_cast<std::size_t>(x)],
                    expected[static_cast<std::size_t>(x)]);
        }
        EXPECT_EQ(eager.smallest_minimizer(t),
                  rs::core::smallest_minimizer_scan(p.f(t), p.max_servers()));
        EXPECT_EQ(eager.largest_minimizer(t),
                  rs::core::largest_minimizer_scan(p.f(t), p.max_servers()));
      }
    }
  }
  (void)rng;
}

TEST(DenseProblem, LazyMaterializesOnlyTouchedRows) {
  rs::util::Rng rng(21);
  const Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kQuadratic, 6, 8, 1.0);
  const DenseProblem lazy(p, DenseProblem::Mode::kLazy);
  for (int t = 1; t <= 6; ++t) EXPECT_FALSE(lazy.materialized(t));
  (void)lazy.row(3);
  EXPECT_TRUE(lazy.materialized(3));
  EXPECT_FALSE(lazy.materialized(2));
  EXPECT_FALSE(lazy.materialized(4));  // no-lookahead: f_4 untouched
  const DenseProblem eager(p);
  for (int t = 1; t <= 6; ++t) EXPECT_TRUE(eager.materialized(t));
}

TEST(DenseProblem, EdgeCases) {
  // T = 0.
  const Problem empty(4, 1.0, {});
  const DenseProblem dense_empty(empty);
  EXPECT_EQ(dense_empty.horizon(), 0);
  EXPECT_EQ(rs::offline::DpSolver().solve(dense_empty).cost, 0.0);
  EXPECT_TRUE(rs::online::run_lcp_dense(dense_empty).empty());

  // m = 0: the single state 0.
  const Problem tiny = rs::core::make_table_problem(0, 1.0, {{2.0}, {3.0}});
  const DenseProblem dense_tiny(tiny);
  EXPECT_EQ(dense_tiny.max_servers(), 0);
  const rs::offline::OfflineResult r = rs::offline::DpSolver().solve(dense_tiny);
  EXPECT_EQ(r.schedule, Schedule({0, 0}));
  EXPECT_EQ(r.cost, 5.0);

  // All-infinite row: infeasible instance.
  const Problem infeasible = rs::core::make_table_problem(
      2, 1.0, {{1.0, 1.0, 1.0}, {kInf, kInf, kInf}});
  const DenseProblem dense_inf(infeasible);
  EXPECT_TRUE(std::isinf(rs::offline::DpSolver().solve(dense_inf).cost));
  EXPECT_EQ(dense_inf.smallest_minimizer(2), 0);
  EXPECT_EQ(dense_inf.largest_minimizer(2), 2);
}

// --- solver equivalence ------------------------------------------------------

TEST(DenseEquivalence, OfflineSolversMatchPerPointPathAcrossFamilies) {
  for (rs::workload::InstanceFamily family :
       rs::workload::all_instance_families()) {
    for (const SizeCase& size : kSizes) {
      rs::util::Rng rng(size.seed ^ 0x9e3779b97f4a7c15ull);
      const Problem p =
          rs::workload::random_instance(rng, family, size.T, size.m, 2.0);
      const Problem q = per_point_view(p);
      const std::string label = rs::workload::family_name(family) + " T=" +
                                std::to_string(size.T) +
                                " m=" + std::to_string(size.m);

      const rs::offline::DpSolver dp;
      const rs::offline::OfflineResult dense_result = dp.solve(p);
      const rs::offline::OfflineResult per_point_result = dp.solve(q);
      EXPECT_EQ(dense_result.cost, per_point_result.cost) << label;
      EXPECT_EQ(dense_result.schedule, per_point_result.schedule) << label;
      EXPECT_EQ(dp.solve_cost(p), per_point_result.cost) << label;
      // Table-backed entry points agree with the streaming ones.
      const DenseProblem dense(p);
      EXPECT_EQ(dp.solve(dense).cost, dense_result.cost) << label;
      EXPECT_EQ(dp.solve(dense).schedule, dense_result.schedule) << label;
      EXPECT_EQ(dp.solve_cost(dense), dense_result.cost) << label;

      const rs::offline::LowMemorySolver low_memory;
      EXPECT_EQ(low_memory.solve(p).cost, low_memory.solve(q).cost) << label;
      EXPECT_EQ(low_memory.solve(p).schedule, low_memory.solve(q).schedule)
          << label;

      const rs::offline::BackwardSolver backward;
      EXPECT_EQ(backward.solve(p).cost, backward.solve(q).cost) << label;
      EXPECT_EQ(backward.solve(p).schedule, backward.solve(q).schedule)
          << label;

      const rs::offline::BinarySearchSolver binary_search;
      EXPECT_EQ(binary_search.solve(p).cost, binary_search.solve(q).cost)
          << label;
      EXPECT_EQ(binary_search.solve(p).schedule,
                binary_search.solve(q).schedule)
          << label;

      EXPECT_EQ(rs::offline::solve_phi_restricted(p, 1).cost,
                rs::offline::solve_phi_restricted(q, 1).cost)
          << label;
    }
  }
}

TEST(DenseEquivalence, BruteForceMatchesPerPointPath) {
  rs::util::Rng rng(31);
  const Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kConvexTable, 6, 4, 2.0);
  const Problem q = per_point_view(p);
  const rs::offline::BruteForceSolver brute;
  EXPECT_EQ(brute.solve(p).cost, brute.solve(q).cost);
  EXPECT_EQ(brute.solve(p).schedule, brute.solve(q).schedule);
}

TEST(DenseEquivalence, OnlineAlgorithmsMatchPerPointPath) {
  for (rs::workload::InstanceFamily family :
       rs::workload::all_instance_families()) {
    for (const SizeCase& size : kSizes) {
      rs::util::Rng rng(size.seed ^ 0xc2b2ae3d27d4eb4full);
      const Problem p =
          rs::workload::random_instance(rng, family, size.T, size.m, 2.0);
      const Problem q = per_point_view(p);
      const std::string label = rs::workload::family_name(family) + " T=" +
                                std::to_string(size.T) +
                                " m=" + std::to_string(size.m);

      rs::online::Lcp lcp_dense;
      rs::online::Lcp lcp_per_point;
      const Schedule dense_schedule = rs::online::run_online(lcp_dense, p);
      const Schedule per_point_schedule =
          rs::online::run_online(lcp_per_point, q);
      EXPECT_EQ(dense_schedule, per_point_schedule) << label;

      // Table-backed replay (lazy, preserving reveal order) agrees too.
      const DenseProblem lazy(p, DenseProblem::Mode::kLazy);
      EXPECT_EQ(rs::online::run_lcp_dense(lazy), dense_schedule) << label;

      // Pinned to the dense backend on both sides: this suite isolates the
      // dense-row-vs-per-point evaluation layer.  (Auto would take the
      // convex-PWL pass for p but not for the FunctionCost-wrapped q, and
      // on exact-tie instances the windowed corridor may tie-break
      // differently across backends — see DESIGN.md §8; the cross-backend
      // equivalence suite lives in test_convex_pwl.cpp.)
      rs::online::WindowedLcp windowed_dense(
          rs::offline::WorkFunctionTracker::Backend::kDense);
      rs::online::WindowedLcp windowed_per_point(
          rs::offline::WorkFunctionTracker::Backend::kDense);
      EXPECT_EQ(rs::online::run_online(windowed_dense, p, /*window=*/3),
                rs::online::run_online(windowed_per_point, q, /*window=*/3))
          << label;
    }
  }
}

TEST(DenseEquivalence, DecoratedInstancesMatchPerPointPath) {
  rs::util::Rng rng(41);
  for (int stride : {1, 2, 5}) {
    const Problem p = decorated_problem(rng, 12, 10, stride);
    const Problem q = per_point_view(p);
    const rs::offline::DpSolver dp;
    EXPECT_EQ(dp.solve(p).cost, dp.solve(q).cost) << "stride=" << stride;
    EXPECT_EQ(dp.solve(p).schedule, dp.solve(q).schedule)
        << "stride=" << stride;
    rs::online::Lcp lcp_dense;
    rs::online::Lcp lcp_per_point;
    EXPECT_EQ(rs::online::run_online(lcp_dense, p),
              rs::online::run_online(lcp_per_point, q))
        << "stride=" << stride;
  }
}

TEST(DenseEquivalence, MaterializeUsesEvalRowValues) {
  rs::util::Rng rng(51);
  const Problem p = rs::workload::random_instance(
      rng, rs::workload::InstanceFamily::kConstrained, 10, 7, 2.0);
  const Problem materialized = rs::core::materialize(p);
  for (int t = 1; t <= p.horizon(); ++t) {
    EXPECT_EQ(row_by_at(materialized.f(t), p.max_servers()),
              row_by_at(p.f(t), p.max_servers()));
  }
}
