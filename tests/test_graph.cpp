// Tests for the layered-graph substrate and the Figure-1 construction:
// path <-> schedule equivalence (path length == schedule cost) and shortest
// path == optimal schedule.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "graph/layered_graph.hpp"
#include "graph/schedule_graph.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::graph;
using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;

TEST(LayeredGraph, ConstructionValidation) {
  EXPECT_THROW(LayeredGraph({}), std::invalid_argument);
  EXPECT_THROW(LayeredGraph({1, 0, 2}), std::invalid_argument);
  LayeredGraph g({1, 3, 1});
  EXPECT_EQ(g.num_layers(), 3);
  EXPECT_EQ(g.layer_size(1), 3);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_THROW(g.layer_size(3), std::out_of_range);
}

TEST(LayeredGraph, EdgeValidation) {
  LayeredGraph g({1, 2, 1});
  EXPECT_NO_THROW(g.add_edge(0, 0, 1, 1.0));
  EXPECT_THROW(g.add_edge(2, 0, 0, 1.0), std::out_of_range);  // last layer
  EXPECT_THROW(g.add_edge(0, 1, 0, 1.0), std::out_of_range);  // bad from
  EXPECT_THROW(g.add_edge(0, 0, 2, 1.0), std::out_of_range);  // bad to
  EXPECT_THROW(g.add_edge(0, 0, 0, std::nan("")), std::invalid_argument);
}

TEST(LayeredGraph, ShortestPathPicksCheapestRoute) {
  // Two routes through the middle layer: via 0 (cost 5) or via 1 (cost 3).
  LayeredGraph g({1, 2, 1});
  g.add_edge(0, 0, 0, 4.0);
  g.add_edge(0, 0, 1, 1.0);
  g.add_edge(1, 0, 0, 1.0);
  g.add_edge(1, 1, 0, 2.0);
  const auto path = g.shortest_path(0, 0);
  ASSERT_TRUE(path.reachable());
  EXPECT_DOUBLE_EQ(path.distance, 3.0);
  EXPECT_EQ(path.vertex_per_layer, (std::vector<int>{0, 1, 0}));
}

TEST(LayeredGraph, UnreachableTarget) {
  LayeredGraph g({1, 2, 1});
  g.add_edge(0, 0, 0, 1.0);
  // no edge from layer 1 to layer 2
  const auto path = g.shortest_path(0, 0);
  EXPECT_FALSE(path.reachable());
  EXPECT_TRUE(std::isinf(path.distance));
  EXPECT_TRUE(path.vertex_per_layer.empty());
}

TEST(LayeredGraph, LastLayerDistances) {
  LayeredGraph g({1, 3});
  g.add_edge(0, 0, 0, 5.0);
  g.add_edge(0, 0, 2, 1.0);
  const std::vector<double> d = g.last_layer_distances(0);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_TRUE(std::isinf(d[1]));
  EXPECT_DOUBLE_EQ(d[2], 1.0);
}

TEST(ScheduleGraph, SizesMatchFigureOne) {
  // |V| = 2 + T(m+1); first layer fan-out m+1, inner layers (m+1)^2 edges,
  // final layer m+1 zero-weight edges.
  const Problem p = rs::core::make_table_problem(
      2, 1.0, {{1.0, 0.5, 0.25}, {0.25, 0.5, 1.0}, {1.0, 1.0, 1.0}});
  const LayeredGraph g = build_schedule_graph(p);
  EXPECT_EQ(g.num_layers(), 5);                 // 0..T+1
  EXPECT_EQ(g.num_vertices(), 2 + 3 * 3);
  EXPECT_EQ(g.num_edges(), 3 + 9 + 9 + 3);
}

TEST(ScheduleGraph, PathLengthEqualsScheduleCost) {
  rs::util::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 6));
    const int m = static_cast<int>(rng.uniform_int(1, 5));
    const Problem p = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kConvexTable, T, m, 1.5);
    Schedule x(static_cast<std::size_t>(T));
    for (int& v : x) v = static_cast<int>(rng.uniform_int(0, m));
    EXPECT_NEAR(schedule_path_length(p, x), rs::core::total_cost(p, x), 1e-9);
  }
}

TEST(ScheduleGraph, ShortestPathIsOptimalSchedule) {
  rs::util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 5));
    const int m = static_cast<int>(rng.uniform_int(1, 3));
    const Problem p = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kConvexTable, T, m, 2.0);
    const LayeredGraph g = build_schedule_graph(p);
    const auto path = g.shortest_path(0, 0);
    ASSERT_TRUE(path.reachable());
    const Schedule from_path = path_to_schedule(path);
    // Exhaustive check: no schedule beats the path.
    Schedule probe(static_cast<std::size_t>(T), 0);
    for (;;) {
      EXPECT_LE(path.distance, rs::core::total_cost(p, probe) + 1e-9);
      int position = 0;
      while (position < T) {
        if (probe[static_cast<std::size_t>(position)] < m) {
          ++probe[static_cast<std::size_t>(position)];
          break;
        }
        probe[static_cast<std::size_t>(position)] = 0;
        ++position;
      }
      if (position == T) break;
    }
    EXPECT_NEAR(rs::core::total_cost(p, from_path), path.distance, 1e-9);
  }
}

TEST(ScheduleGraph, InfeasibleStatesDropEdges) {
  const Problem p = rs::core::make_table_problem(
      1, 1.0, {{kInf, 1.0}, {0.5, kInf}});
  const LayeredGraph g = build_schedule_graph(p);
  const auto path = g.shortest_path(0, 0);
  ASSERT_TRUE(path.reachable());
  const Schedule x = path_to_schedule(path);
  EXPECT_EQ(x, (Schedule{1, 0}));
  EXPECT_NEAR(path.distance, 1.0 + 1.0 + 0.5, 1e-12);
}

TEST(ScheduleGraph, PathToScheduleValidation) {
  LayeredGraph::PathResult bad;
  EXPECT_THROW(path_to_schedule(bad), std::invalid_argument);
}

TEST(ScheduleGraph, EmptyHorizon) {
  const Problem p(3, 1.0, {});
  const LayeredGraph g = build_schedule_graph(p);
  const auto path = g.shortest_path(0, 0);
  ASSERT_TRUE(path.reachable());
  EXPECT_DOUBLE_EQ(path.distance, 0.0);
  EXPECT_TRUE(path_to_schedule(path).empty());
}

}  // namespace
