// The deep invariant auditor (util/audit.hpp; DESIGN.md §13).
//
// Two halves.  Positive: every healthy state the library produces passes
// its own deep checks (the checks themselves must not false-alarm, or the
// audited CI job is noise).  Negative: each catalogued invariant, when
// violated through the test-only corruption hooks, raises AuditError
// naming exactly that invariant and the probing site — proving the checks
// can actually see the corruption classes they claim to (a laundered NaN,
// a crossed corridor, an illegal tenant-ladder move, a torn envelope).
//
// The deep-check functions are compiled in every build configuration
// (only the RS_AUDIT call sites are gated), so this suite runs in the
// plain tier-1 build too, not just under RIGHTSIZER_AUDIT=ON.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/checkpoint_store.hpp"
#include "core/convex_pwl.hpp"
#include "core/cost_function.hpp"
#include "core/dense_problem.hpp"
#include "core/problem.hpp"
#include "fleet/tenant.hpp"
#include "offline/work_function.hpp"
#include "util/audit.hpp"

namespace {

using rs::core::ConvexPwl;
using rs::core::ConvexPwlTestAccess;
using rs::core::CostPtr;
using rs::core::DenseProblem;
using rs::core::DenseProblemTestAccess;
using rs::core::Problem;
using rs::fleet::TenantConfig;
using rs::fleet::TenantSession;
using rs::fleet::TenantSessionTestAccess;
using rs::fleet::TenantState;
using rs::offline::WorkFunctionTracker;
using rs::offline::WorkFunctionTrackerTestAccess;
using rs::util::audit::AuditError;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Runs `corrupt_and_audit` and asserts it raises AuditError carrying
// exactly `invariant`; returns the caught error's message for extra
// assertions.
template <typename Fn>
std::string expect_audit(const char* invariant, Fn&& corrupt_and_audit) {
  try {
    corrupt_and_audit();
  } catch (const AuditError& e) {
    EXPECT_EQ(e.invariant(), invariant);
    EXPECT_FALSE(e.site().empty());
    return e.what();
  }
  ADD_FAILURE() << "no AuditError raised; expected invariant '" << invariant
                << "'";
  return {};
}

// ---------------------------------------------------------------------------
// AuditError plumbing
// ---------------------------------------------------------------------------

TEST(AuditError, CarriesInvariantSiteAndDetail) {
  try {
    rs::util::audit::fail("some-invariant", "Some::site", "the detail");
    FAIL() << "fail() returned";
  } catch (const AuditError& e) {
    EXPECT_EQ(e.invariant(), "some-invariant");
    EXPECT_EQ(e.site(), "Some::site");
    const std::string what = e.what();
    EXPECT_NE(what.find("some-invariant"), std::string::npos);
    EXPECT_NE(what.find("Some::site"), std::string::npos);
    EXPECT_NE(what.find("the detail"), std::string::npos);
  }
}

TEST(AuditError, RequirePassesOnTrue) {
  EXPECT_NO_THROW(rs::util::audit::require(true, "x", "y"));
  EXPECT_NO_THROW(rs::util::audit::require_with(
      true, "x", "y", [] { return std::string("never built"); }));
}

// ---------------------------------------------------------------------------
// ConvexPwl representation invariants
// ---------------------------------------------------------------------------

ConvexPwl healthy_pwl() {
  return ConvexPwl::from_parts(0, 4, 1.0, -0.5, {{2, 1.0}, {3, 0.25}});
}

TEST(AuditConvexPwl, HealthyRepresentationsPass) {
  EXPECT_NO_THROW(rs::core::audit_convex_pwl(healthy_pwl(), "test"));
  EXPECT_NO_THROW(rs::core::audit_convex_pwl(ConvexPwl::infinite(), "test"));
  EXPECT_NO_THROW(rs::core::audit_convex_pwl(ConvexPwl::point(3, 2.0), "test"));
}

TEST(AuditConvexPwl, FlagsInvertedDomain) {
  expect_audit("pwl-domain-ordered", [] {
    ConvexPwl f = healthy_pwl();
    ConvexPwlTestAccess::lo(f) = 9;
    rs::core::audit_convex_pwl(f, "test");
  });
}

TEST(AuditConvexPwl, FlagsNaNAnchor) {
  expect_audit("pwl-anchor-finite", [] {
    ConvexPwl f = healthy_pwl();
    ConvexPwlTestAccess::v_lo(f) = kNaN;
    rs::core::audit_convex_pwl(f, "test");
  });
}

TEST(AuditConvexPwl, FlagsNaNSlope) {
  expect_audit("pwl-slope-finite", [] {
    ConvexPwl f = healthy_pwl();
    ConvexPwlTestAccess::slope0(f) = kNaN;
    rs::core::audit_convex_pwl(f, "test");
  });
}

TEST(AuditConvexPwl, FlagsSlopedPointDomain) {
  expect_audit("pwl-point-domain-flat", [] {
    ConvexPwl f = ConvexPwl::point(2, 1.0);
    ConvexPwlTestAccess::slope0(f) = 1.0;
    rs::core::audit_convex_pwl(f, "test");
  });
}

TEST(AuditConvexPwl, FlagsBreakpointOutsideDomain) {
  expect_audit("pwl-breakpoint-in-domain", [] {
    ConvexPwl f = healthy_pwl();
    ConvexPwlTestAccess::dslope(f)[0] = 1.0;  // position must be in (lo, hi)
    rs::core::audit_convex_pwl(f, "test");
  });
}

TEST(AuditConvexPwl, FlagsNonPositiveIncrement) {
  expect_audit("pwl-increment-positive", [] {
    ConvexPwl f = healthy_pwl();
    ConvexPwlTestAccess::dslope(f)[2] = -0.5;  // concave kink
    rs::core::audit_convex_pwl(f, "test");
  });
}

// ---------------------------------------------------------------------------
// WorkFunctionTracker corridor invariants
// ---------------------------------------------------------------------------

// |x - 2|-shaped slot cost: argmin interior, all values exact in double.
CostPtr vee_cost() {
  return std::make_shared<rs::core::AffineAbsCost>(1.0, 2.0, 0.0);
}

WorkFunctionTracker advanced_tracker(WorkFunctionTracker::Backend backend,
                                     int slots = 3) {
  WorkFunctionTracker tracker(4, 1.0, backend);
  const CostPtr f = vee_cost();
  for (int t = 0; t < slots; ++t) tracker.advance(*f);
  return tracker;
}

TEST(AuditWorkFunction, HealthyTrackersPassOnBothBackends) {
  for (const auto backend : {WorkFunctionTracker::Backend::kDense,
                             WorkFunctionTracker::Backend::kAuto}) {
    WorkFunctionTracker tracker = advanced_tracker(backend);
    EXPECT_NO_THROW(tracker.audit_invariants("test"));
    // Repeated audits must agree with the monotone watermark bookkeeping.
    tracker.advance(*vee_cost());
    EXPECT_NO_THROW(tracker.audit_invariants("test"));
  }
}

TEST(AuditWorkFunction, FlagsCrossedCorridor) {
  expect_audit("corridor-ordered", [] {
    WorkFunctionTracker tracker =
        advanced_tracker(WorkFunctionTracker::Backend::kDense);
    WorkFunctionTrackerTestAccess::x_lower(tracker) =
        WorkFunctionTrackerTestAccess::x_upper(tracker) + 1;
    tracker.audit_invariants("test");
  });
}

TEST(AuditWorkFunction, FlagsCorridorOutOfRange) {
  expect_audit("corridor-in-range", [] {
    WorkFunctionTracker tracker =
        advanced_tracker(WorkFunctionTracker::Backend::kDense);
    WorkFunctionTrackerTestAccess::x_upper(tracker) = 99;
    tracker.audit_invariants("test");
  });
}

TEST(AuditWorkFunction, FlagsLaunderedNaNLabel) {
  expect_audit("labels-nan-free", [] {
    WorkFunctionTracker tracker =
        advanced_tracker(WorkFunctionTracker::Backend::kDense);
    WorkFunctionTrackerTestAccess::dense_lower(tracker)[1] = kNaN;
    tracker.audit_invariants("test");
  });
}

TEST(AuditWorkFunction, FlagsNegativeLabel) {
  expect_audit("labels-nonnegative", [] {
    WorkFunctionTracker tracker =
        advanced_tracker(WorkFunctionTracker::Backend::kDense);
    WorkFunctionTrackerTestAccess::dense_upper(tracker)[0] = -1.0;
    tracker.audit_invariants("test");
  });
}

TEST(AuditWorkFunction, FlagsStaleCorridorAgainstLabels) {
  const std::string what = expect_audit("corridor-argmin", [] {
    WorkFunctionTracker tracker =
        advanced_tracker(WorkFunctionTracker::Backend::kDense);
    // The vee cost pins the corridor strictly inside [0, m]; widening the
    // tracked upper end to m no longer matches the label re-scan.
    WorkFunctionTrackerTestAccess::x_upper(tracker) = 4;
    tracker.audit_invariants("test");
  });
  EXPECT_NE(what.find("rescan"), std::string::npos);
}

TEST(AuditWorkFunction, FlagsBrokenLemma7Redundancy) {
  expect_audit("lemma7-redundancy", [] {
    WorkFunctionTracker tracker =
        advanced_tracker(WorkFunctionTracker::Backend::kAuto);
    // kAuto with a compact-form cost runs the PWL backend; shifting the
    // whole Ĉ^L up by 1 keeps the argmin interval (so corridor-argmin
    // still holds) but breaks Ĉ^L(x) = Ĉ^U(x) + βx at the corridor ends.
    ConvexPwlTestAccess::v_lo(
        WorkFunctionTrackerTestAccess::pwl_lower(tracker)) += 1.0;
    tracker.audit_invariants("test");
  });
}

// ---------------------------------------------------------------------------
// DenseProblem row invariants
// ---------------------------------------------------------------------------

Problem small_problem() {
  std::vector<CostPtr> fs{vee_cost(), vee_cost(),
                          std::make_shared<rs::core::AffineAbsCost>(2.0, 1.0,
                                                                    0.0)};
  return Problem(4, 1.0, std::move(fs));
}

TEST(AuditDenseProblem, HealthyEagerTablePasses) {
  const DenseProblem dense(small_problem());
  EXPECT_NO_THROW(dense.audit_rows("test"));
}

TEST(AuditDenseProblem, NaNRowsAreDeliberatelyLegal) {
  // Poisoned instances travel the dense path so the solvers' poison
  // accumulators can classify them — the auditor must not reject them here.
  DenseProblem dense(small_problem());
  DenseProblemTestAccess::values(dense)[2] = kNaN;
  EXPECT_NO_THROW(dense.audit_rows("test"));
}

TEST(AuditDenseProblem, FlagsNegativeCostValue) {
  expect_audit("dense-row-nonnegative", [] {
    DenseProblem dense(small_problem());
    DenseProblemTestAccess::values(dense)[3] = -0.25;
    dense.audit_rows("test");
  });
}

TEST(AuditDenseProblem, FlagsStaleMinimizerCache) {
  const std::string what = expect_audit("dense-minimizer-cache", [] {
    DenseProblem dense(small_problem());
    // Row 1's vee cost has its minimizer at x = 2; 0 is demonstrably stale.
    DenseProblemTestAccess::min_small(dense)[0] = 0;
    dense.audit_rows("test");
  });
  EXPECT_NE(what.find("row 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checkpoint envelope self-check
// ---------------------------------------------------------------------------

TEST(AuditCheckpoint, SealedEnvelopeRoundTrips) {
  rs::core::CheckpointWriter writer;
  writer.u32(7);
  writer.f64(3.5);
  const std::vector<std::uint8_t> bytes =
      writer.seal(rs::core::kTrackerCheckpointKind);
  EXPECT_NO_THROW(rs::core::audit_envelope(
      bytes, rs::core::kTrackerCheckpointKind, "test"));
}

TEST(AuditCheckpoint, FlagsBitFlippedPayload) {
  rs::core::CheckpointWriter writer;
  writer.u64(0xDEADBEEFull);
  std::vector<std::uint8_t> bytes =
      writer.seal(rs::core::kTrackerCheckpointKind);
  bytes.back() ^= 0x01;  // payload corruption -> CRC mismatch
  const std::string what =
      expect_audit("checkpoint-envelope-roundtrip", [&] {
        rs::core::audit_envelope(bytes, rs::core::kTrackerCheckpointKind,
                                 "test");
      });
  EXPECT_NE(what.find("checksum"), std::string::npos);
}

TEST(AuditCheckpoint, FlagsKindMismatch) {
  rs::core::CheckpointWriter writer;
  writer.u32(1);
  const std::vector<std::uint8_t> bytes =
      writer.seal(rs::core::kTrackerCheckpointKind);
  expect_audit("checkpoint-envelope-roundtrip", [&] {
    rs::core::audit_envelope(bytes, rs::core::kLcpCheckpointKind, "test");
  });
}

// ---------------------------------------------------------------------------
// Tenant ladder legality and session consistency
// ---------------------------------------------------------------------------

TEST(AuditTenant, TransitionTableMatchesTheLadder) {
  using S = TenantState;
  const S all[] = {S::kHealthy, S::kDegraded, S::kRecovering,
                   S::kQuarantined};
  for (const S from : all) {
    for (const S to : all) {
      bool expected = true;
      if (from != to) {
        if (from == S::kQuarantined) expected = false;  // terminal
        if (from == S::kDegraded && to == S::kHealthy) {
          expected = false;  // the dense pin is permanent
        }
      }
      EXPECT_EQ(rs::fleet::tenant_transition_legal(from, to), expected)
          << rs::fleet::to_string(from) << " -> " << rs::fleet::to_string(to);
    }
  }
}

TEST(AuditTenant, IllegalTransitionRaisesTypedError) {
  EXPECT_NO_THROW(rs::fleet::audit_tenant_transition(
      TenantState::kHealthy, TenantState::kRecovering, "test"));
  const std::string what = expect_audit("tenant-transition-legal", [] {
    rs::fleet::audit_tenant_transition(TenantState::kQuarantined,
                                       TenantState::kHealthy, "test");
  });
  EXPECT_NE(what.find("quarantined"), std::string::npos);
  EXPECT_NE(what.find("healthy"), std::string::npos);
}

TenantConfig tenant_config(std::string name) {
  TenantConfig config;
  config.name = std::move(name);
  config.m = 4;
  config.beta = 1.0;
  config.cost_of = [](double lambda) -> CostPtr {
    return std::make_shared<rs::core::AffineAbsCost>(1.0, lambda, 0.0);
  };
  return config;
}

// A session with three decided slots (heap-held: TenantSession owns a
// mutex and is neither copyable nor movable).
std::unique_ptr<TenantSession> decided_session(const char* name) {
  auto session = std::make_unique<TenantSession>(tenant_config(name), 0);
  rs::core::CheckpointStore store;
  for (const double lambda : {1.0, 3.0, 2.0}) {
    EXPECT_TRUE(session->offer(lambda));
    EXPECT_GT(session->step(store), 0);
  }
  return session;
}

TEST(AuditTenant, HealthySessionPasses) {
  const auto session = decided_session("healthy");
  EXPECT_NO_THROW(session->audit_invariants("test"));
}

TEST(AuditTenant, LegalLadderMovesPassThroughAuditedSetter) {
  const auto session = decided_session("ladder");
  EXPECT_NO_THROW(TenantSessionTestAccess::set_state_audited(
      *session, TenantState::kRecovering, "test"));
  EXPECT_NO_THROW(TenantSessionTestAccess::set_state_audited(
      *session, TenantState::kHealthy, "test"));
  expect_audit("tenant-transition-legal", [&] {
    TenantSessionTestAccess::state(*session) = TenantState::kDegraded;
    TenantSessionTestAccess::set_state_audited(*session, TenantState::kHealthy,
                                               "test");
  });
}

TEST(AuditTenant, FlagsQuarantineWithoutReason) {
  expect_audit("tenant-quarantine-reason", [] {
    const auto session = decided_session("no-reason");
    TenantSessionTestAccess::state(*session) = TenantState::kQuarantined;
    session->audit_invariants("test");
  });
}

TEST(AuditTenant, FlagsReasonWithoutQuarantine) {
  expect_audit("tenant-quarantine-reason", [] {
    const auto session = decided_session("ghost-reason");
    TenantSessionTestAccess::stats(*session).quarantine_reason = "ghost";
    session->audit_invariants("test");
  });
}

TEST(AuditTenant, FlagsDegradedWithoutStickyFlag) {
  expect_audit("tenant-degraded-flag", [] {
    const auto session = decided_session("degraded");
    TenantSessionTestAccess::state(*session) = TenantState::kDegraded;
    session->audit_invariants("test");
  });
}

TEST(AuditTenant, FlagsTrajectoryShapeMismatch) {
  expect_audit("tenant-trajectory-shape", [] {
    const auto session = decided_session("shape");
    TenantSessionTestAccess::lower(*session).pop_back();
    session->audit_invariants("test");
  });
}

TEST(AuditTenant, FlagsStepsAccountingDrift) {
  expect_audit("tenant-steps-accounting", [] {
    const auto session = decided_session("drift");
    TenantSessionTestAccess::stats(*session).steps += 1;
    session->audit_invariants("test");
  });
}

TEST(AuditTenant, FlagsDecisionOutsideCorridor) {
  const std::string what = expect_audit("tenant-decision-in-corridor", [] {
    const auto session = decided_session("escape");
    TenantSessionTestAccess::schedule(*session)[1] = 99;
    session->audit_invariants("test");
  });
  EXPECT_NE(what.find("slot 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Gating
// ---------------------------------------------------------------------------

TEST(AuditGating, RsAuditMatchesBuildConfiguration) {
#ifdef RIGHTSIZER_AUDIT
  EXPECT_TRUE(rs::util::audit::kEnabled);
  bool ran = false;
  RS_AUDIT(ran = true);
  EXPECT_TRUE(ran);
#else
  EXPECT_FALSE(rs::util::audit::kEnabled);
  bool ran = false;
  RS_AUDIT(ran = true);
  EXPECT_FALSE(ran) << "RS_AUDIT must not evaluate its argument when off";
#endif
}

}  // namespace
