// Tests for the Section-5 lower-bound adversaries: Theorem 4 (ratio -> 3
// against deterministic discrete algorithms), Theorem 5 (restricted model),
// Theorems 6/7 (ratio -> 2 continuous), Theorems 8/9 (ratio -> 2
// randomized), and the Theorem-10 prediction-window stretching.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "lowerbound/adversary.hpp"
#include "offline/dp_solver.hpp"
#include "online/gradient_flow.hpp"
#include "online/lcp.hpp"
#include "online/lcp_window.hpp"
#include "online/level_flow.hpp"
#include "online/baselines.hpp"

namespace {

using namespace rs::lowerbound;
using rs::online::Lcp;

TEST(DeterministicAdversary, DrivesLcpToThree) {
  // Theorem 4 + Theorem 2 tightness: LCP is 3-competitive and the adversary
  // realizes the bound as ε -> 0.
  Lcp lcp;
  const AdversaryOutcome coarse =
      deterministic_discrete_adversary(lcp, 0.05);
  EXPECT_LE(coarse.ratio, 3.0 + 1e-9);
  EXPECT_GT(coarse.ratio, 2.5);

  const AdversaryOutcome fine =
      deterministic_discrete_adversary(lcp, 0.01);
  EXPECT_LE(fine.ratio, 3.0 + 1e-9);
  EXPECT_GT(fine.ratio, 2.9);
  EXPECT_GT(fine.ratio, coarse.ratio);  // convergence in ε
}

TEST(DeterministicAdversary, FollowMinimizerAlsoAtLeastThree) {
  // The bound is universal: chasing the minimizer pays the full switching
  // cost every slot and lands well above 3 as well.
  rs::online::FollowTheMinimizer follow;
  const AdversaryOutcome outcome =
      deterministic_discrete_adversary(follow, 0.02);
  EXPECT_GT(outcome.ratio, 2.9);
}

TEST(DeterministicAdversary, OutcomeInternallyConsistent) {
  Lcp lcp;
  const AdversaryOutcome outcome =
      deterministic_discrete_adversary(lcp, 0.1, 500);
  EXPECT_EQ(outcome.problem.horizon(), 500);
  EXPECT_EQ(outcome.problem.max_servers(), 1);
  EXPECT_DOUBLE_EQ(outcome.problem.beta(), 2.0);
  EXPECT_GT(outcome.optimal_cost, 0.0);
  EXPECT_NEAR(outcome.ratio, outcome.algorithm_cost / outcome.optimal_cost,
              1e-12);
  EXPECT_THROW(deterministic_discrete_adversary(lcp, 0.0),
               std::invalid_argument);
  EXPECT_THROW(deterministic_discrete_adversary(lcp, 1.5),
               std::invalid_argument);
}

TEST(RestrictedAdversary, DrivesLcpToThree) {
  // Theorem 5: the same bound in the restricted model.  The forced initial
  // jump to x >= 1 adds a constant to both sides, so convergence needs a
  // longer horizon than the general-model construction.
  Lcp lcp;
  const AdversaryOutcome outcome =
      restricted_discrete_adversary(lcp, 0.02, 20000);
  EXPECT_LE(outcome.ratio, 3.0 + 1e-9);
  EXPECT_GT(outcome.ratio, 2.8);
  EXPECT_EQ(outcome.problem.max_servers(), 2);
}

TEST(RestrictedAdversary, WorkloadConstraintsRespected) {
  // The generated instance must force x_t >= 1 everywhere (λ >= 0.5).
  Lcp lcp;
  const AdversaryOutcome outcome =
      restricted_discrete_adversary(lcp, 0.1, 200);
  for (int t = 1; t <= outcome.problem.horizon(); ++t) {
    EXPECT_TRUE(std::isinf(outcome.problem.cost_at(t, 0))) << "t=" << t;
  }
}

TEST(ContinuousAdversary, AlgorithmBPaysAlmostTwo) {
  // Lemma 21: against its own reference strategy, B's ratio is 2 − Θ(ε).
  rs::online::GradientFlow b;  // == B on ϕ functions
  const AdversaryOutcome outcome = continuous_adversary(b, 0.05);
  EXPECT_GT(outcome.ratio, 2.0 - 2.5 * 0.05);
  EXPECT_LE(outcome.ratio, 2.0 + 1e-6);
}

TEST(ContinuousAdversary, LevelFlowPaysAlmostTwo) {
  rs::online::LevelFlow flow;
  const AdversaryOutcome outcome = continuous_adversary(flow, 0.05);
  EXPECT_GT(outcome.ratio, 2.0 - 2.5 * 0.05);
  EXPECT_LE(outcome.ratio, 2.0 + 1e-6);
}

TEST(ContinuousAdversary, AnyDeviationCostsAtLeastB) {
  // Lemma 23: an algorithm deviating from B pays at least as much; the
  // memoryless-style faster mover must land at ratio >= B's.
  rs::online::GradientFlow b;
  const AdversaryOutcome reference = continuous_adversary(b, 0.05, 30000);
  rs::online::GradientFlow eager(3.0);  // moves 3x faster than B
  const AdversaryOutcome deviant = continuous_adversary(eager, 0.05, 30000);
  EXPECT_GE(deviant.ratio, reference.ratio - 1e-9);
}

TEST(RandomizedAdversary, DrivesRoundingToTwo) {
  // Theorems 8/9: expected ratio of the randomized algorithm approaches 2
  // (its guarantee) under the adversary.
  rs::online::RandomizedRounding alg(1234);
  const AdversaryOutcome outcome = randomized_discrete_adversary(alg, 0.05);
  EXPECT_GT(outcome.ratio, 2.0 - 2.5 * 0.05);
  EXPECT_LE(outcome.ratio, 2.0 + 1e-6);
}

TEST(WindowStretching, PreservesAdversaryStrengthAgainstWindowedLcp) {
  // Theorem 10: replicate each adversary function n·w times at scale
  // 1/(n·w); an algorithm with window w still cannot beat 3 − δ.
  Lcp lcp;
  const AdversaryOutcome base =
      deterministic_discrete_adversary(lcp, 0.05, 4000);
  const int w = 2;
  const int n = 8;
  const rs::core::Problem stretched =
      stretch_for_window(base.problem, n * w);

  rs::online::WindowedLcp windowed;
  const rs::core::Schedule play =
      rs::online::run_online(windowed, stretched, w);
  const double algorithm_cost = rs::core::total_cost(stretched, play);
  const double optimal_cost =
      rs::offline::DpSolver().solve_cost(stretched);
  ASSERT_GT(optimal_cost, 0.0);
  const double ratio = algorithm_cost / optimal_cost;
  // With n = 8 the theorem guarantees > c − δ for modest δ; empirically the
  // windowed LCP stays close to 3 on the stretched instance.
  EXPECT_GT(ratio, 2.5);
  EXPECT_LE(ratio, 3.0 + 1e-9);
}

TEST(WindowStretching, OptimalCostUnchanged) {
  // Stretching preserves the offline optimum (Σ_u f'_{t,u} = f_t).
  Lcp lcp;
  const AdversaryOutcome base =
      deterministic_discrete_adversary(lcp, 0.1, 300);
  const rs::core::Problem stretched = stretch_for_window(base.problem, 6);
  const double base_optimal = rs::offline::DpSolver().solve_cost(base.problem);
  const double stretched_optimal =
      rs::offline::DpSolver().solve_cost(stretched);
  EXPECT_LE(stretched_optimal, base_optimal + 1e-9);
  // (It can only get cheaper: more switching points to choose from.)
}

}  // namespace
