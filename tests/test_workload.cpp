// Tests for trace statistics and the synthetic workload generators,
// including the documented shape targets of the Hotmail/MSR stand-ins.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>

#include "util/rng.hpp"
#include "workload/generators.hpp"
#include "workload/trace.hpp"

namespace {

using namespace rs::workload;

TEST(TraceStats, HandComputedValues) {
  Trace trace{{1.0, 3.0, 2.0, 2.0}};
  const TraceStats stats = compute_stats(trace);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.peak, 3.0);
  EXPECT_DOUBLE_EQ(stats.valley, 1.0);
  EXPECT_DOUBLE_EQ(stats.peak_to_mean, 1.5);
  EXPECT_NEAR(stats.stddev, std::sqrt(0.5), 1e-12);
}

TEST(TraceStats, EmptyTrace) {
  const TraceStats stats = compute_stats(Trace{});
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.peak_to_mean, 0.0);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
  Trace trace;
  for (int t = 0; t < 400; ++t) {
    trace.lambda.push_back(std::sin(2.0 * 3.14159265 * t / 20.0) + 2.0);
  }
  EXPECT_GT(autocorrelation(trace, 20), 0.95);
  EXPECT_LT(autocorrelation(trace, 10), -0.9);
  EXPECT_THROW(autocorrelation(trace, -1), std::invalid_argument);
}

TEST(Autocorrelation, DegenerateCases) {
  EXPECT_DOUBLE_EQ(autocorrelation(Trace{{1.0, 1.0, 1.0}}, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation(Trace{{1.0}}, 2), 0.0);
}

TEST(RescalePeak, ScalesToTarget) {
  Trace trace{{1.0, 4.0, 2.0}};
  const Trace scaled = rescale_peak(trace, 10.0);
  EXPECT_DOUBLE_EQ(compute_stats(scaled).peak, 10.0);
  EXPECT_DOUBLE_EQ(scaled.lambda[0], 2.5);
  EXPECT_THROW(rescale_peak(trace, -1.0), std::invalid_argument);
}

TEST(TraceCsv, RoundTrip) {
  Trace trace{{0.5, 1.25, 0.0}};
  const std::string path = ::testing::TempDir() + "/rs_trace.csv";
  write_trace_csv(trace, path);
  const Trace round = read_trace_csv(path);
  ASSERT_EQ(round.horizon(), 3);
  for (int t = 0; t < 3; ++t) {
    EXPECT_NEAR(round.lambda[static_cast<std::size_t>(t)],
                trace.lambda[static_cast<std::size_t>(t)], 1e-9);
  }
}

TEST(TraceCsv, RoundTripIsBitExact) {
  // Values with no short decimal representation: %.17g must recover every
  // bit (std::to_string's fixed 6 decimals used to truncate these).
  Trace trace{{1.0 / 3.0, 0.1, 1e-9, 123456.789012345678, 0.0, 1e17}};
  const std::string path = ::testing::TempDir() + "/rs_trace_exact.csv";
  write_trace_csv(trace, path);
  const Trace round = read_trace_csv(path);
  ASSERT_EQ(round.horizon(), trace.horizon());
  EXPECT_EQ(round.lambda, trace.lambda);  // bitwise
}

TEST(TraceCsv, EmptyAndSingleSlot) {
  const std::string path = ::testing::TempDir() + "/rs_trace_edge.csv";
  write_trace_csv(Trace{}, path);
  EXPECT_EQ(read_trace_csv(path).horizon(), 0);

  write_trace_csv(Trace{{2.5}}, path);
  const Trace single = read_trace_csv(path);
  ASSERT_EQ(single.horizon(), 1);
  EXPECT_DOUBLE_EQ(single.lambda[0], 2.5);
}

TEST(TraceCsv, WriteRejectsInvalidValues) {
  const std::string path = ::testing::TempDir() + "/rs_trace_bad.csv";
  EXPECT_THROW(write_trace_csv(Trace{{1.0, -0.5}}, path),
               std::invalid_argument);
  EXPECT_THROW(write_trace_csv(Trace{{std::nan("")}}, path),
               std::invalid_argument);
  EXPECT_THROW(
      write_trace_csv(Trace{{std::numeric_limits<double>::infinity()}}, path),
      std::invalid_argument);
}

TEST(TraceCsv, ReadRejectsInvalidValues) {
  const std::string path = ::testing::TempDir() + "/rs_trace_malformed.csv";
  const auto write_raw = [&path](const std::string& body) {
    std::ofstream out(path);
    out << "lambda\n" << body;
  };
  write_raw("1.0\n-2.0\n");
  EXPECT_THROW(read_trace_csv(path), std::runtime_error);
  write_raw("nan\n");  // NaN passes `value < 0` checks; must still reject
  EXPECT_THROW(read_trace_csv(path), std::runtime_error);
  write_raw("inf\n");
  EXPECT_THROW(read_trace_csv(path), std::runtime_error);
  write_raw("banana\n");
  EXPECT_THROW(read_trace_csv(path), std::runtime_error);
  write_raw("1.5x\n");  // trailing characters after a valid prefix
  EXPECT_THROW(read_trace_csv(path), std::runtime_error);
}

TEST(RescalePeak, RejectsNaNTarget) {
  Trace trace{{1.0, 2.0}};
  EXPECT_THROW(rescale_peak(trace, std::nan("")), std::invalid_argument);
  // Zero target and all-zero traces are fine (documented no-op cases).
  EXPECT_DOUBLE_EQ(compute_stats(rescale_peak(trace, 0.0)).peak, 0.0);
  const Trace zeros{{0.0, 0.0}};
  EXPECT_EQ(rescale_peak(zeros, 5.0).lambda, zeros.lambda);
}

TEST(Diurnal, ShapeAndDeterminism) {
  rs::util::Rng rng(1);
  DiurnalParams params;
  params.horizon = 288;
  params.period = 144;
  params.noise = 0.0;
  const Trace trace = diurnal(rng, params);
  ASSERT_EQ(trace.horizon(), 288);
  // Valley at t = 0, peak near t = period/2.
  EXPECT_NEAR(trace.lambda[0], params.peak * params.base, 1e-9);
  EXPECT_NEAR(trace.lambda[72], params.peak, 1e-9);
  // Periodicity without noise.
  EXPECT_NEAR(trace.lambda[10], trace.lambda[154], 1e-9);

  rs::util::Rng rng_a(7), rng_b(7);
  params.noise = 0.05;
  const Trace a = diurnal(rng_a, params);
  const Trace b = diurnal(rng_b, params);
  EXPECT_EQ(a.lambda, b.lambda);
}

TEST(Diurnal, Validation) {
  rs::util::Rng rng(1);
  DiurnalParams params;
  params.horizon = -1;
  EXPECT_THROW(diurnal(rng, params), std::invalid_argument);
  params.horizon = 10;
  params.period = 0;
  EXPECT_THROW(diurnal(rng, params), std::invalid_argument);
  params.period = 10;
  params.base = 1.5;
  EXPECT_THROW(diurnal(rng, params), std::invalid_argument);
}

TEST(Mmpp2, SwitchesBetweenRates) {
  rs::util::Rng rng(5);
  Mmpp2Params params;
  params.horizon = 5000;
  params.jitter = 0.0;
  const Trace trace = mmpp2(rng, params);
  int low = 0, high = 0;
  for (double value : trace.lambda) {
    if (std::fabs(value - params.rate_low) < 1e-9) ++low;
    if (std::fabs(value - params.rate_high) < 1e-9) ++high;
  }
  EXPECT_EQ(low + high, 5000);
  EXPECT_GT(low, 500);
  EXPECT_GT(high, 500);
}

TEST(Spikes, BaselineWithSpikes) {
  rs::util::Rng rng(9);
  SpikeParams params;
  params.horizon = 2000;
  const Trace trace = spikes(rng, params);
  int spike_slots = 0;
  for (double value : trace.lambda) {
    EXPECT_TRUE(std::fabs(value - params.baseline) < 1e-12 ||
                std::fabs(value - params.spike_height) < 1e-12);
    if (std::fabs(value - params.spike_height) < 1e-12) ++spike_slots;
  }
  EXPECT_GT(spike_slots, 10);
  EXPECT_LT(spike_slots, 1000);
}

TEST(BoundedRandomWalk, StaysInBox) {
  rs::util::Rng rng(11);
  RandomWalkParams params;
  params.horizon = 3000;
  const Trace trace = bounded_random_walk(rng, params);
  for (double value : trace.lambda) {
    EXPECT_GE(value, params.floor);
    EXPECT_LE(value, params.ceiling);
  }
}

TEST(HotmailLike, MatchesDocumentedShape) {
  rs::util::Rng rng(13);
  const Trace trace = hotmail_like(rng, 7, 144, 100.0);
  ASSERT_EQ(trace.horizon(), 7 * 144);
  const TraceStats stats = compute_stats(trace);
  // Documented target: peak-to-mean ≈ 2 with strong diurnal structure.
  EXPECT_GT(stats.peak_to_mean, 1.6);
  EXPECT_LT(stats.peak_to_mean, 2.6);
  EXPECT_GT(autocorrelation(trace, 144), 0.5);  // daily cycle
  // Deep valleys: valley below 40% of the mean.
  EXPECT_LT(stats.valley, 0.4 * stats.mean);
}

TEST(MsrLike, MatchesDocumentedShape) {
  rs::util::Rng rng(17);
  const Trace trace = msr_like(rng, 7, 144, 100.0);
  const TraceStats stats = compute_stats(trace);
  // Documented target: burstier, peak-to-mean ≈ 4.
  EXPECT_GT(stats.peak_to_mean, 3.0);
  EXPECT_LT(stats.peak_to_mean, 5.5);
  // Bursts exist: peak well above the 0.22·peak baseline band.
  EXPECT_GT(stats.peak, 60.0);
}

TEST(Generators, Validation) {
  rs::util::Rng rng(1);
  EXPECT_THROW(hotmail_like(rng, 0), std::invalid_argument);
  EXPECT_THROW(msr_like(rng, 1, 1), std::invalid_argument);
  SpikeParams sp;
  sp.spike_duration = 0;
  EXPECT_THROW(spikes(rng, sp), std::invalid_argument);
  RandomWalkParams rw;
  rw.floor = 2.0;
  rw.ceiling = 1.0;
  EXPECT_THROW(bounded_random_walk(rng, rw), std::invalid_argument);
}

}  // namespace
