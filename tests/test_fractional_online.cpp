// Tests for the fractional online algorithms: GradientFlow (Bansal et al.'s
// 2-competitive algorithm; specializes to the paper's algorithm B) and the
// memoryless balance algorithm.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"
#include "offline/grid_continuous.hpp"
#include "online/gradient_flow.hpp"
#include "online/level_flow.hpp"
#include "online/memoryless.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::online;
using rs::core::AffineAbsCost;
using rs::core::CostPtr;
using rs::core::FractionalSchedule;
using rs::core::Problem;
using rs::workload::InstanceFamily;

CostPtr phi(double eps, double center) {
  return std::make_shared<AffineAbsCost>(eps, center);
}

// The Section-5.2.1 instance: m = 1, β = 2, functions ϕ0 = ε|x| and
// ϕ1 = ε|1−x|.
Problem phi_problem(double eps, const std::vector<int>& bits) {
  std::vector<CostPtr> fs;
  fs.reserve(bits.size());
  for (int bit : bits) fs.push_back(phi(eps, static_cast<double>(bit)));
  return Problem(1, 2.0, std::move(fs));
}

TEST(GradientFlow, ReproducesAlgorithmBStepSize) {
  // On ϕ1 arrivals with β = 2, B moves up by exactly ε/2 per slot until
  // saturating at 1; on ϕ0 it moves down by ε/2 until 0.
  const double eps = 0.125;  // 1/eps integer => exact saturation
  GradientFlow flow;
  flow.reset(OnlineContext{1, 2.0});
  double expected = 0.0;
  for (int step = 0; step < 20; ++step) {
    const double x = flow.decide(phi(eps, 1.0), {});
    expected = std::min(expected + eps / 2.0, 1.0);
    ASSERT_NEAR(x, expected, 1e-12) << "up step " << step;
  }
  for (int step = 0; step < 20; ++step) {
    const double x = flow.decide(phi(eps, 0.0), {});
    expected = std::max(expected - eps / 2.0, 0.0);
    ASSERT_NEAR(x, expected, 1e-12) << "down step " << step;
  }
}

TEST(GradientFlow, SpeedIsSlopeOverBeta) {
  // One slot of a slope-s function moves the state by s/β (until saturation).
  for (double beta : {0.5, 1.0, 2.0, 8.0}) {
    for (double slope : {0.1, 0.25, 0.5}) {
      GradientFlow flow;
      flow.reset(OnlineContext{4, beta});
      const double x = flow.decide(phi(slope, 4.0), {});
      EXPECT_NEAR(x, std::min(slope / beta, 4.0), 1e-12)
          << "beta=" << beta << " slope=" << slope;
    }
  }
}

TEST(GradientFlow, CrossesCellsWithVaryingSlopes) {
  // Piecewise-linear cost with slopes -4 then -1 toward the minimizer at 2:
  // from 0 the flow crosses cell [0,1] at speed 4/β and continues at 1/β.
  const double beta = 2.0;
  const auto f = std::make_shared<rs::core::TableCost>(
      std::vector<double>{5.0, 1.0, 0.0});
  GradientFlow flow;
  flow.reset(OnlineContext{2, beta});
  // Cell [0,1]: speed 2, crossed in 0.5 slots; cell [1,2]: speed 0.5,
  // remaining 0.5 slots move 0.25.
  const double x = flow.decide(f, {});
  EXPECT_NEAR(x, 1.25, 1e-12);
}

TEST(GradientFlow, SaturatesAtMinimizerAndStays) {
  GradientFlow flow;
  flow.reset(OnlineContext{3, 1.0});
  for (int i = 0; i < 100; ++i) flow.decide(phi(5.0, 2.0), {});
  EXPECT_NEAR(flow.position(), 2.0, 1e-12);
  // Flat function: no movement.
  const auto flat = std::make_shared<rs::core::TableCost>(
      std::vector<double>{1.0, 1.0, 1.0, 1.0});
  EXPECT_NEAR(flow.decide(flat, {}), 2.0, 1e-12);
}

TEST(GradientFlow, StaysWithinBox) {
  rs::util::Rng rng(77);
  GradientFlow flow;
  flow.reset(OnlineContext{5, 0.3});
  for (int i = 0; i < 300; ++i) {
    const double center = rng.uniform(-1.0, 6.0);
    const double x = flow.decide(
        std::make_shared<rs::core::QuadraticCost>(rng.uniform(0.1, 4.0),
                                                  center),
        {});
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 5.0);
  }
}

TEST(GradientFlow, RejectsBadSpeedScale) {
  EXPECT_THROW(GradientFlow(0.0), std::invalid_argument);
  EXPECT_THROW(GradientFlow(-1.0), std::invalid_argument);
}

TEST(GradientFlow, TwoCompetitiveOnPhiAdversary) {
  // Lemma 21's case-1 workload: alternate ϕ1 until saturation at 1, then
  // ϕ0 until back at 0; the measured ratio must be <= 2.
  const double eps = 0.05;
  const int half = static_cast<int>(2.0 / eps);  // slots to traverse [0,1]
  std::vector<int> bits;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < half; ++i) bits.push_back(1);
    for (int i = 0; i < half; ++i) bits.push_back(0);
  }
  const Problem p = phi_problem(eps, bits);
  GradientFlow flow;
  const FractionalSchedule x = run_online(flow, p);
  const double algorithm_cost = rs::core::total_cost_symmetric(p, x);
  const double optimal =
      rs::offline::solve_continuous_on_grid(p, half).cost;
  ASSERT_GT(optimal, 0.0);
  EXPECT_LE(algorithm_cost, 2.0 * optimal + 1e-9);
  // And the adversary really pushes it close to 2 (Lemma 21: 2 − ε/2).
  EXPECT_GE(algorithm_cost, (2.0 - eps) * optimal - 1e-9);
}

TEST(GradientFlow, BoundedCompetitiveOnRandomInstances) {
  // GradientFlow is the *pointwise* transcription of algorithm B; it is
  // exact on the lower-bound family but, unlike LevelFlow, not 2-competitive
  // for general convex costs (the level counters, not the point position,
  // carry the required memory).  Sanity-check a loose factor-3 envelope.
  rs::util::Rng rng(88);
  const rs::offline::DpSolver dp;
  for (InstanceFamily family :
       {InstanceFamily::kConvexTable, InstanceFamily::kQuadratic,
        InstanceFamily::kAffineAbs, InstanceFamily::kFlatRegions}) {
    for (int trial = 0; trial < 10; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 40));
      const int m = static_cast<int>(rng.uniform_int(1, 10));
      const Problem p = rs::workload::random_instance(
          rng, family, T, m, rng.uniform(0.3, 3.0));
      const double optimal = dp.solve_cost(p);
      if (!(optimal > 1e-9)) continue;
      GradientFlow flow;
      const FractionalSchedule x = run_online(flow, p);
      const double cost = rs::core::total_cost_symmetric(p, x);
      EXPECT_LE(cost, 3.0 * optimal + 1e-6)
          << rs::workload::family_name(family) << " trial=" << trial;
    }
  }
}

TEST(LevelFlow, ReproducesAlgorithmBOnPhiFunctions) {
  // m = 1, β = 2: the single level's counter moves by ε/2 per ϕ arrival —
  // the paper's algorithm B.
  const double eps = 0.125;
  LevelFlow flow;
  flow.reset(OnlineContext{1, 2.0});
  double expected = 0.0;
  for (int step = 0; step < 20; ++step) {
    const double x = flow.decide(phi(eps, 1.0), {});
    expected = std::min(expected + eps / 2.0, 1.0);
    ASSERT_NEAR(x, expected, 1e-12) << "up step " << step;
  }
  for (int step = 0; step < 20; ++step) {
    const double x = flow.decide(phi(eps, 0.0), {});
    expected = std::max(expected - eps / 2.0, 0.0);
    ASSERT_NEAR(x, expected, 1e-12) << "down step " << step;
  }
}

TEST(LevelFlow, ProfileStaysMonotoneOnConvexCosts) {
  // Convex slopes are monotone per step, so the on-profile must remain
  // non-increasing in the level index (it represents P[X >= level]).
  rs::util::Rng rng(456);
  LevelFlow flow;
  flow.reset(OnlineContext{8, 1.0});
  for (int i = 0; i < 200; ++i) {
    flow.decide(std::make_shared<rs::core::QuadraticCost>(
                    rng.uniform(0.05, 2.0), rng.uniform(-1.0, 9.0)),
                {});
    const std::vector<double>& p = flow.profile();
    for (std::size_t k = 1; k < p.size(); ++k) {
      ASSERT_LE(p[k], p[k - 1] + 1e-12) << "step " << i << " level " << k;
    }
  }
}

TEST(LevelFlow, HardConstraintsSaturateLevels) {
  LevelFlow flow;
  flow.reset(OnlineContext{4, 1.0});
  // Slot requires x in [2, 3]: levels 0,1 forced on; level 3 forced off.
  const auto f = std::make_shared<rs::core::TableCost>(std::vector<double>{
      rs::util::kInf, rs::util::kInf, 1.0, 0.5, rs::util::kInf});
  const double x = flow.decide(f, {});
  EXPECT_GE(x, 2.0);
  EXPECT_LE(x, 3.0);
  EXPECT_DOUBLE_EQ(flow.profile()[0], 1.0);
  EXPECT_DOUBLE_EQ(flow.profile()[1], 1.0);
  EXPECT_DOUBLE_EQ(flow.profile()[3], 0.0);
}

TEST(LevelFlow, RejectsBadScale) {
  EXPECT_THROW(LevelFlow(0.0), std::invalid_argument);
}

TEST(LevelFlow, TwoCompetitiveOnPhiAdversary) {
  const double eps = 0.05;
  const int half = static_cast<int>(2.0 / eps);
  std::vector<int> bits;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < half; ++i) bits.push_back(1);
    for (int i = 0; i < half; ++i) bits.push_back(0);
  }
  const Problem p = phi_problem(eps, bits);
  LevelFlow flow;
  const FractionalSchedule x = run_online(flow, p);
  const double algorithm_cost = rs::core::total_cost_symmetric(p, x);
  const double optimal = rs::offline::solve_continuous_on_grid(p, half).cost;
  ASSERT_GT(optimal, 0.0);
  EXPECT_LE(algorithm_cost, 2.0 * optimal + 1e-9);
  EXPECT_GE(algorithm_cost, (2.0 - eps) * optimal - 1e-9);
}

TEST(LevelFlow, AtMostTwoCompetitiveOnRandomInstances) {
  // The Theorem-3 prerequisite: fractional cost <= 2 · OPT(P̄); by Lemma 4
  // OPT(P̄) equals the discrete optimum.
  rs::util::Rng rng(881);
  const rs::offline::DpSolver dp;
  for (InstanceFamily family :
       {InstanceFamily::kConvexTable, InstanceFamily::kQuadratic,
        InstanceFamily::kAffineAbs, InstanceFamily::kFlatRegions,
        InstanceFamily::kConstrained}) {
    for (int trial = 0; trial < 12; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 40));
      const int m = static_cast<int>(rng.uniform_int(1, 10));
      const Problem p = rs::workload::random_instance(
          rng, family, T, m, rng.uniform(0.3, 3.0));
      const double optimal = dp.solve_cost(p);
      if (!(optimal > 1e-9) || !std::isfinite(optimal)) continue;
      LevelFlow flow;
      const FractionalSchedule x = run_online(flow, p);
      const double cost = rs::core::total_cost_symmetric(p, x);
      EXPECT_LE(cost, 2.0 * optimal + 1e-6)
          << rs::workload::family_name(family) << " trial=" << trial;
    }
  }
}

TEST(Memoryless, MovesToBalancePoint) {
  // f = 1·|x−4|, start 0, β = 2, θ = 2: balance at f(x) = 2δ:
  // 4 − δ = 2δ  =>  δ = 4/3.
  MemorylessBalance alg;
  alg.reset(OnlineContext{4, 2.0});
  const double x = alg.decide(phi(1.0, 4.0), {});
  EXPECT_NEAR(x, 4.0 / 3.0, 1e-9);
}

TEST(Memoryless, SaturatesAtMinimizerWhenCostDominates) {
  // Huge slope: even at the minimizer the hitting cost bound holds, so the
  // algorithm moves all the way.
  MemorylessBalance alg;
  alg.reset(OnlineContext{2, 1.0});
  const auto f = std::make_shared<rs::core::TableCost>(
      std::vector<double>{100.0, 50.0, 40.0});
  // At the minimizer x=2: f=40 >= θ(β/2)·2 = 2·1·2/2... = 2 -> saturate.
  EXPECT_NEAR(alg.decide(f, {}), 2.0, 1e-9);
}

TEST(Memoryless, StaysPutAtMinimum) {
  // Start at 0 with the minimizer already there: no movement, twice.
  MemorylessBalance alg;
  alg.reset(OnlineContext{3, 1.0});
  EXPECT_NEAR(alg.decide(phi(10.0, 0.0), {}), 0.0, 1e-12);
  EXPECT_NEAR(alg.decide(phi(10.0, 0.0), {}), 0.0, 1e-12);
}

TEST(Memoryless, RejectsBadTheta) {
  EXPECT_THROW(MemorylessBalance(0.0), std::invalid_argument);
}

TEST(Memoryless, AtMostThreeCompetitiveOnRandomInstances) {
  rs::util::Rng rng(99);
  const rs::offline::DpSolver dp;
  for (int trial = 0; trial < 25; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 40));
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kQuadratic, T, m, rng.uniform(0.3, 3.0));
    const double optimal = dp.solve_cost(p);
    if (!(optimal > 1e-9)) continue;
    MemorylessBalance alg;
    const FractionalSchedule x = run_online(alg, p);
    EXPECT_LE(rs::core::total_cost_symmetric(p, x), 3.0 * optimal + 1e-6);
  }
}

}  // namespace
