// Fast build canary: constructs a tiny instance, runs one offline solver and
// one online algorithm end-to-end, and checks the ordering the paper
// guarantees for every instance: cost(online) >= cost(offline optimum).
// Registered first in the ctest order so build/link breakage surfaces in
// milliseconds, before the heavier paper-property suites run.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost_function.hpp"
#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "offline/dp_solver.hpp"
#include "online/lcp.hpp"
#include "online/online_algorithm.hpp"

namespace {

rs::core::Problem tiny_problem() {
  const int m = 4;
  std::vector<rs::core::CostPtr> fs;
  for (int t = 1; t <= 6; ++t) {
    const double center = (t % 2 == 0) ? 3.0 : 1.0;
    fs.push_back(std::make_shared<rs::core::QuadraticCost>(1.0, center));
  }
  return rs::core::Problem(m, 2.0, std::move(fs));
}

TEST(BuildSanity, OfflineSolvesTinyInstance) {
  const auto p = tiny_problem();
  const auto result = rs::offline::DpSolver{}.solve(p);
  ASSERT_TRUE(result.feasible());
  ASSERT_EQ(static_cast<int>(result.schedule.size()), p.horizon());
  EXPECT_TRUE(rs::core::is_feasible(p, result.schedule));
  EXPECT_NEAR(rs::core::total_cost(p, result.schedule), result.cost, 1e-9);
}

TEST(BuildSanity, OnlineNeverBeatsOfflineOptimum) {
  const auto p = tiny_problem();
  const double opt = rs::offline::DpSolver{}.solve_cost(p);

  rs::online::Lcp lcp;
  const auto online_schedule = rs::online::run_online(lcp, p);
  ASSERT_TRUE(rs::core::is_feasible(p, online_schedule));
  const double online_cost = rs::core::total_cost(p, online_schedule);

  EXPECT_GE(online_cost, opt - 1e-9);
}

}  // namespace
