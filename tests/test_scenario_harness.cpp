// Evaluation-harness tests: the seeding contract (identical seed ⇒
// identical MonteCarloReport under any engine thread count), the shape of
// the sample/cell matrix, and the dashboard rendering.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenario/eval_harness.hpp"

namespace {

using rs::scenario::CellSummary;
using rs::scenario::HarnessAlgorithm;
using rs::scenario::HarnessConfig;
using rs::scenario::MonteCarloReport;
using rs::scenario::SampleRow;
using rs::scenario::ScenarioKind;

HarnessConfig small_config() {
  HarnessConfig config;
  config.scenarios = {ScenarioKind::kDiurnalWeekly, ScenarioKind::kHeavyTail,
                      ScenarioKind::kAdversarial};
  config.samples_per_scenario = 3;
  config.base_seed = 99;
  config.zoo.servers = 16;
  config.zoo.horizon = 192;
  config.zoo.slots_per_day = 96;
  config.zoo.peak = 12.0;
  config.zoo.quantize_levels = 12;
  config.zoo.adversary_eps = 0.3;
  return config;
}

void expect_identical(const MonteCarloReport& a, const MonteCarloReport& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const SampleRow& ra = a.samples[i];
    const SampleRow& rb = b.samples[i];
    EXPECT_EQ(ra.kind, rb.kind) << i;
    EXPECT_EQ(ra.algorithm, rb.algorithm) << i;
    EXPECT_EQ(ra.sample, rb.sample) << i;
    EXPECT_EQ(ra.seed, rb.seed) << i;
    // Bitwise equality: every sample is computed single-threadedly inside
    // its job from a pure function of the seed, so thread count must not
    // perturb a single bit.
    EXPECT_EQ(ra.algorithm_cost, rb.algorithm_cost) << i;
    EXPECT_EQ(ra.optimal_cost, rb.optimal_cost) << i;
    EXPECT_EQ(ra.static_cost, rb.static_cost) << i;
    EXPECT_EQ(ra.ratio, rb.ratio) << i;
    EXPECT_EQ(ra.savings_percent, rb.savings_percent) << i;
  }
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].ratio.mean, b.cells[i].ratio.mean) << i;
    EXPECT_EQ(a.cells[i].max_ratio, b.cells[i].max_ratio) << i;
    EXPECT_EQ(a.cells[i].savings_percent.mean,
              b.cells[i].savings_percent.mean)
        << i;
    EXPECT_EQ(a.cells[i].mean_optimal_cost, b.cells[i].mean_optimal_cost)
        << i;
  }
}

TEST(EvalHarness, MatrixShapeAndSanity) {
  const HarnessConfig config = small_config();
  const MonteCarloReport report = rs::scenario::run_monte_carlo(config);
  const std::size_t kinds = config.scenarios.size();
  const std::size_t algorithms = config.algorithms.size();
  const std::size_t samples =
      static_cast<std::size_t>(config.samples_per_scenario);
  ASSERT_EQ(report.samples.size(), kinds * samples * algorithms);
  ASSERT_EQ(report.cells.size(), kinds * algorithms);
  EXPECT_EQ(report.stats.jobs, kinds * samples);

  for (const SampleRow& row : report.samples) {
    EXPECT_GT(row.optimal_cost, 0.0);
    // No algorithm beats the exact offline optimum.
    EXPECT_GE(row.ratio, 1.0 - 1e-9);
    EXPECT_LE(row.savings_percent, 100.0);
    // LCP is deterministic and 3-competitive (Theorem 2).
    if (row.algorithm != HarnessAlgorithm::kRandomizedRounding) {
      EXPECT_LE(row.ratio, 3.0 + 1e-6);
    }
  }
  for (const CellSummary& cell : report.cells) {
    EXPECT_EQ(cell.samples, config.samples_per_scenario);
    EXPECT_GE(cell.max_ratio, cell.ratio.mean - 1e-12);
  }
}

TEST(EvalHarness, DeterministicAcrossThreadCounts) {
  HarnessConfig config = small_config();
  config.threads = 1;
  const MonteCarloReport one = rs::scenario::run_monte_carlo(config);
  config.threads = 2;
  const MonteCarloReport two = rs::scenario::run_monte_carlo(config);
  config.threads = 4;
  const MonteCarloReport four = rs::scenario::run_monte_carlo(config);
  expect_identical(one, two);
  expect_identical(one, four);
}

TEST(EvalHarness, DashboardListsEveryCell) {
  const HarnessConfig config = small_config();
  const MonteCarloReport report = rs::scenario::run_monte_carlo(config);
  const std::string dashboard = rs::scenario::dashboard_markdown(report);
  EXPECT_NE(dashboard.find("| scenario"), std::string::npos);
  for (ScenarioKind kind : config.scenarios) {
    EXPECT_NE(dashboard.find(rs::scenario::to_string(kind)),
              std::string::npos);
  }
  for (HarnessAlgorithm algorithm : config.algorithms) {
    EXPECT_NE(dashboard.find(rs::scenario::to_string(algorithm)),
              std::string::npos);
  }
}

TEST(EvalHarness, Validation) {
  HarnessConfig config = small_config();
  config.algorithms.clear();
  EXPECT_THROW(rs::scenario::run_monte_carlo(config), std::invalid_argument);
  config = small_config();
  config.samples_per_scenario = 0;
  EXPECT_THROW(rs::scenario::run_monte_carlo(config), std::invalid_argument);
}

}  // namespace
