// The convex piecewise-linear backend (core/convex_pwl.hpp) and its
// equivalence with the dense-row backend.
//
// Three layers of evidence:
//   * unit tests of the ConvexPwl operations against O(m²) brute-force
//     references (the relax min-convolutions, add, argmin, all-infinite
//     operands) and of the builder edge cases (duplicate slopes, merge
//     epsilon, budget, non-convex rejection);
//   * conversion tests: CostFunction::as_convex_pwl agrees with at() for
//     every family and decorator that claims a compact form, and declines
//     exactly where documented;
//   * backend equivalence: the PWL-backed tracker / LCP / windowed LCP /
//     DP fast path reproduce the dense backend's bounds, schedules and
//     costs — bit-identically on integer-valued instances (all FP
//     arithmetic is exact there, including tie-breaking on cost plateaus),
//     and within 1e-9 on the random double families (DESIGN.md §8).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "rightsizer/rightsizer.hpp"

namespace {

using rs::core::ConvexPwl;
using rs::core::ConvexPwlBuilder;
using rs::core::CostPtr;
using rs::core::Problem;
using rs::core::Schedule;
using rs::offline::WorkFunctionTracker;
using rs::util::kInf;
using rs::workload::InstanceFamily;
using Backend = rs::offline::WorkFunctionTracker::Backend;

// O(m²) references for the two relax operators, straight from eqs. 11/12.
std::vector<double> brute_relax(const std::vector<double>& w, double beta,
                                bool charge_up) {
  const int m = static_cast<int>(w.size()) - 1;
  std::vector<double> out(w.size(), kInf);
  for (int x = 0; x <= m; ++x) {
    for (int xp = 0; xp <= m; ++xp) {
      const double move =
          charge_up
              ? (xp <= x ? beta * (x - xp) : 0.0)
              : (xp >= x ? beta * (xp - x) : 0.0);
      out[static_cast<std::size_t>(x)] =
          std::min(out[static_cast<std::size_t>(x)],
                   w[static_cast<std::size_t>(xp)] + move);
    }
  }
  return out;
}

// Integer-valued convex tables: every operation downstream stays exact in
// double arithmetic, so the PWL and dense backends must agree bit for bit
// (including tie-breaking on exact plateaus).
Problem integer_instance(rs::util::Rng& rng, int T, int m, double beta) {
  std::vector<CostPtr> fs;
  for (int t = 0; t < T; ++t) {
    std::vector<double> values(static_cast<std::size_t>(m) + 1);
    double v = static_cast<double>(rng.uniform_int(0, 6));
    double slope = static_cast<double>(rng.uniform_int(0, 4)) - 2.0;
    values[0] = v;
    for (int x = 1; x <= m; ++x) {
      slope += static_cast<double>(rng.uniform_int(0, 2));
      v += slope;
      values[static_cast<std::size_t>(x)] = std::max(v, 0.0);
      v = values[static_cast<std::size_t>(x)];
    }
    fs.push_back(std::make_shared<rs::core::TableCost>(std::move(values)));
  }
  return Problem(m, beta, std::move(fs));
}

CostPtr sla_cost(double shortfall_slope, double excess_slope, double knee_lo,
                 double knee_hi, double base) {
  return std::make_shared<rs::core::SumCost>(std::vector<CostPtr>{
      rs::core::make_shortfall_hinge(shortfall_slope, knee_lo),
      rs::core::make_hinge(excess_slope, knee_hi),
      std::make_shared<rs::core::QuadraticCost>(0.0, 0.0, base)});
}

}  // namespace

// --- ConvexPwl operations ----------------------------------------------------

TEST(ConvexPwl, PointConstantAndValueAt) {
  const ConvexPwl point = ConvexPwl::point(3, 2.5);
  EXPECT_EQ(point.value_at(3), 2.5);
  EXPECT_TRUE(std::isinf(point.value_at(2)));
  EXPECT_TRUE(std::isinf(point.value_at(4)));
  EXPECT_EQ(point.argmin().lo, 3);
  EXPECT_EQ(point.argmin().hi, 3);

  const ConvexPwl flat = ConvexPwl::constant(1, 5, 4.0);
  for (int x = 1; x <= 5; ++x) EXPECT_EQ(flat.value_at(x), 4.0);
  EXPECT_TRUE(std::isinf(flat.value_at(0)));
  EXPECT_EQ(flat.argmin().lo, 1);  // smallest minimizer of a plateau
  EXPECT_EQ(flat.argmin().hi, 5);  // largest
  EXPECT_EQ(flat.argmin().value, 4.0);

  const ConvexPwl none = ConvexPwl::infinite();
  EXPECT_TRUE(none.is_infinite());
  EXPECT_TRUE(std::isinf(none.value_at(0)));
}

TEST(ConvexPwl, RelaxMatchesBruteForceOnRandomConvexTables) {
  rs::util::Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 14));
    const double beta = rng.uniform(0.1, 4.0);
    const rs::core::TableCost table(rs::workload::random_convex_table(rng, m));
    const auto form = table.as_convex_pwl(m);
    ASSERT_TRUE(form.has_value());
    std::vector<double> reference(static_cast<std::size_t>(m) + 1);
    table.eval_row(m, reference);

    ConvexPwl up = *form;
    up.relax_charge_up(beta, 0, m);
    const std::vector<double> up_expected =
        brute_relax(reference, beta, /*charge_up=*/true);
    ConvexPwl down = *form;
    down.relax_charge_down(beta, 0, m);
    const std::vector<double> down_expected =
        brute_relax(reference, beta, /*charge_up=*/false);
    for (int x = 0; x <= m; ++x) {
      EXPECT_NEAR(up.value_at(x), up_expected[static_cast<std::size_t>(x)],
                  1e-9)
          << "up x=" << x << " trial=" << trial;
      EXPECT_NEAR(down.value_at(x), down_expected[static_cast<std::size_t>(x)],
                  1e-9)
          << "down x=" << x << " trial=" << trial;
    }
  }
}

TEST(ConvexPwl, RelaxOnRestrictedDomainsExtendsCorrectly) {
  // Domain [2, 4], then relax to [0, 6]: flat/β extensions per accounting.
  ConvexPwlBuilder builder;
  builder.start(2, 5.0);
  builder.run(-1.0, 3);  // 5 -> 4
  builder.run(2.0, 4);   // 4 -> 6
  const auto f = builder.finish(rs::core::kUnboundedBreakpoints);
  ASSERT_TRUE(f.has_value());

  ConvexPwl up = *f;
  up.relax_charge_up(1.5, 0, 6);
  // Left: free power-down => flat at the minimum (4 at x=3).
  EXPECT_NEAR(up.value_at(0), 4.0, 1e-12);
  EXPECT_NEAR(up.value_at(3), 4.0, 1e-12);
  // Right: slope clipped to β = 1.5 and extended.
  EXPECT_NEAR(up.value_at(4), 5.5, 1e-12);
  EXPECT_NEAR(up.value_at(6), 8.5, 1e-12);

  ConvexPwl down = *f;
  down.relax_charge_down(1.5, 0, 6);
  // Left: power-up charge => slope −β from the domain edge (clip of the
  // −1 slope stays, the approach to x=2 costs 1.5/step).
  EXPECT_NEAR(down.value_at(2), 5.0, 1e-12);
  EXPECT_NEAR(down.value_at(0), 8.0, 1e-12);
  // Right: free power-down looking up => flat at the minimum.
  EXPECT_NEAR(down.value_at(6), 4.0, 1e-12);
}

TEST(ConvexPwl, AddIntersectsDomainsAndHandlesInfinite) {
  const auto a = rs::core::TableCost({kInf, 2.0, 3.0, 5.0}).as_convex_pwl(3);
  const auto b = rs::core::TableCost({1.0, 1.0, 4.0, kInf}).as_convex_pwl(3);
  ASSERT_TRUE(a && b);
  ConvexPwl sum = *a;
  sum.add(*b);
  EXPECT_TRUE(std::isinf(sum.value_at(0)));
  EXPECT_EQ(sum.value_at(1), 3.0);
  EXPECT_EQ(sum.value_at(2), 7.0);
  EXPECT_TRUE(std::isinf(sum.value_at(3)));

  // Disjoint domains: the sum is infeasible everywhere.
  ConvexPwl left = ConvexPwl::point(0, 1.0);
  left.add(ConvexPwl::point(2, 1.0));
  EXPECT_TRUE(left.is_infinite());

  // The all-infinite operand absorbs (min-convolution/add satellite case).
  ConvexPwl c = *a;
  c.add(ConvexPwl::infinite());
  EXPECT_TRUE(c.is_infinite());
  c.relax_charge_up(1.0, 0, 3);  // relaxing +inf stays +inf
  EXPECT_TRUE(c.is_infinite());
  ConvexPwl d = ConvexPwl::infinite();
  d.add(*a);
  EXPECT_TRUE(d.is_infinite());
}

TEST(ConvexPwl, AddMatchesBruteForceOnRandomPairs) {
  rs::util::Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<double> va = rs::workload::random_convex_table(rng, m);
    std::vector<double> vb = rs::workload::random_convex_table(rng, m);
    // Random infeasible prefix/suffix to exercise domain intersection.
    const int prefix = static_cast<int>(rng.uniform_int(0, m / 2 + 1));
    for (int x = 0; x < prefix; ++x) va[static_cast<std::size_t>(x)] = kInf;
    const int cut = static_cast<int>(rng.uniform_int(m / 2, m));
    for (int x = cut + 1; x <= m; ++x) vb[static_cast<std::size_t>(x)] = kInf;
    const auto a = rs::core::TableCost(va).as_convex_pwl(m);
    const auto b = rs::core::TableCost(vb).as_convex_pwl(m);
    ASSERT_TRUE(a && b);
    ConvexPwl sum = *a;
    sum.add(*b);
    for (int x = 0; x <= m; ++x) {
      const double expected = va[static_cast<std::size_t>(x)] +
                              vb[static_cast<std::size_t>(x)];
      if (std::isinf(expected)) {
        EXPECT_TRUE(std::isinf(sum.value_at(x))) << "x=" << x;
      } else {
        EXPECT_NEAR(sum.value_at(x), expected, 1e-9) << "x=" << x;
      }
    }
  }
}

// --- builder edge cases (satellite) -----------------------------------------

TEST(ConvexPwlBuilder, MergesDuplicateSlopes) {
  ConvexPwlBuilder builder;
  builder.start(0, 1.0);
  builder.run(0.5, 2);
  builder.run(0.5, 5);  // duplicate slope: merged, no breakpoint
  builder.run(2.0, 7);
  const auto f = builder.finish(rs::core::kUnboundedBreakpoints);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->breakpoints(), 1);  // only the 0.5 -> 2.0 change
  EXPECT_NEAR(f->value_at(5), 3.5, 1e-12);
  EXPECT_NEAR(f->value_at(7), 7.5, 1e-12);
}

TEST(ConvexPwlBuilder, MergeEpsilonAbsorbsRoundingDips) {
  // A slope dip of ~1 ulp is rounding noise from independently computed
  // slopes: merged, not rejected.
  ConvexPwlBuilder builder;
  builder.start(0, 0.0);
  builder.run(1.0, 2);
  builder.run(1.0 - 1e-15, 4);
  builder.run(3.0, 5);
  const auto f = builder.finish(rs::core::kUnboundedBreakpoints);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->breakpoints(), 1);

  // A genuine dip (far beyond the merge epsilon) is non-convex: rejected.
  ConvexPwlBuilder bad;
  bad.start(0, 0.0);
  bad.run(1.0, 2);
  bad.run(0.5, 4);
  EXPECT_FALSE(bad.finish(rs::core::kUnboundedBreakpoints).has_value());
}

TEST(ConvexPwlBuilder, NearZeroSlopePairsUseMixedTolerance) {
  // Audit regression (the 1e-12 merge epsilon at a zero crossing): a
  // purely *relative* tolerance degenerates for adjacent slopes straddling
  // zero — scale ~1e-13 would shrink the tolerance below the dip and
  // reject rounding noise as concavity.  The builder's tolerance is mixed
  // (relative with an absolute floor at slope magnitude 1), so sub-epsilon
  // dips across zero merge...
  ConvexPwlBuilder across_zero;
  across_zero.start(0, 1.0);
  across_zero.run(-2.0, 2);
  across_zero.run(1e-13, 4);
  across_zero.run(-1e-13, 6);  // dip of 2e-13 < 1e-12: rounding noise
  across_zero.run(3.0, 8);
  const auto merged = across_zero.finish(rs::core::kUnboundedBreakpoints);
  ASSERT_TRUE(merged.has_value());
  // ...and the merged plateau keeps the earlier run's slope.
  EXPECT_NEAR(merged->value_at(6), merged->value_at(2), 1e-11);

  // A genuine near-zero dip (beyond the absolute floor) still rejects.
  ConvexPwlBuilder genuine;
  genuine.start(0, 1.0);
  genuine.run(1e-13, 2);
  genuine.run(-1e-6, 4);
  EXPECT_FALSE(genuine.finish(rs::core::kUnboundedBreakpoints).has_value());

  // Large slopes stay on the relative side: a dip far above the absolute
  // floor but within 1e-12 of the slope magnitude merges.
  ConvexPwlBuilder large;
  large.start(0, 0.0);
  large.run(1e9, 2);
  large.run(1e9 - 1e-4, 4);  // dip 1e-4 < 1e-12 · 1e9 = 1e-3
  EXPECT_TRUE(large.finish(rs::core::kUnboundedBreakpoints).has_value());
  ConvexPwlBuilder large_reject;
  large_reject.start(0, 0.0);
  large_reject.run(1e9, 2);
  large_reject.run(1e9 - 1e-2, 4);  // dip 1e-2 > 1e-3: genuine
  EXPECT_FALSE(
      large_reject.finish(rs::core::kUnboundedBreakpoints).has_value());
}

TEST(ConvexPwlBuilder, RejectsNaNAndEnforcesBudget) {
  ConvexPwlBuilder builder;
  builder.start(0, std::nan(""));
  EXPECT_FALSE(builder.finish(rs::core::kUnboundedBreakpoints).has_value());

  ConvexPwlBuilder stairs;
  stairs.start(0, 0.0);
  for (int x = 0; x < 10; ++x) stairs.run(static_cast<double>(x), x + 1);
  EXPECT_FALSE(stairs.finish(4).has_value());  // 9 breakpoints > 4
  ConvexPwlBuilder stairs2;
  stairs2.start(0, 0.0);
  for (int x = 0; x < 10; ++x) stairs2.run(static_cast<double>(x), x + 1);
  EXPECT_TRUE(stairs2.finish(9).has_value());
}

TEST(PiecewiseLinearCost, EvalRowMatchesAt) {
  // The hoisted row fills (added for the dense arm of bench_scaling) must
  // keep the bit-identical eval_row contract.
  rs::util::Rng rng(97);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(0, 20));
    const double knee = rng.uniform(-2.0, m + 2.0);
    const std::vector<CostPtr> functions = {
        rs::core::make_hinge(rng.uniform(0.0, 2.0), knee),
        rs::core::make_shortfall_hinge(rng.uniform(0.0, 2.0), knee),
        sla_cost(1.5, 0.75, knee, knee + 2.0, 0.25),
        std::make_shared<rs::core::PiecewiseLinearCost>(
            std::vector<rs::core::Breakpoint>{{0.5, 3.0}}),  // constant
    };
    for (const CostPtr& f : functions) {
      std::vector<double> row(static_cast<std::size_t>(m) + 1);
      f->eval_row(m, row);
      for (int x = 0; x <= m; ++x) {
        EXPECT_EQ(row[static_cast<std::size_t>(x)], f->at(x))
            << f->name() << " x=" << x << " m=" << m;
      }
    }
  }
}

TEST(PiecewiseLinearCost, RejectsZeroLengthSegments) {
  // Zero-length segments (duplicate breakpoint x) are rejected at
  // construction; so are decreasing x values.
  EXPECT_THROW(rs::core::PiecewiseLinearCost(
                   {{1.0, 0.0}, {1.0, 2.0}, {3.0, 4.0}}),
               std::invalid_argument);
  EXPECT_THROW(rs::core::PiecewiseLinearCost({{2.0, 0.0}, {1.0, 1.0}}),
               std::invalid_argument);
}

// --- conversions per family --------------------------------------------------

namespace {

void expect_matches_at(const rs::core::CostFunction& f, int m,
                       double tolerance, const std::string& label) {
  const auto form = f.as_convex_pwl(m);
  ASSERT_TRUE(form.has_value()) << label;
  for (int x = 0; x <= m; ++x) {
    const double expected = f.at(x);
    const double actual = form->value_at(x);
    if (std::isinf(expected)) {
      EXPECT_TRUE(std::isinf(actual)) << label << " x=" << x;
    } else if (tolerance == 0.0) {
      EXPECT_EQ(actual, expected) << label << " x=" << x;
    } else {
      EXPECT_NEAR(actual, expected,
                  tolerance * std::max(1.0, std::fabs(expected)))
          << label << " x=" << x;
    }
  }
}

}  // namespace

TEST(ConvexPwlConversion, MatchesAtAcrossFamilies) {
  const int m = 17;
  expect_matches_at(rs::core::TableCost({3.0, 1.0, 2.5, 7.0}), m, 1e-12,
                    "table+extension");
  expect_matches_at(rs::core::TableCost({kInf, kInf, 1.0, 2.0, 4.0}), 4, 0.0,
                    "inf prefix");
  expect_matches_at(rs::core::TableCost({1.0, 2.0, kInf, kInf}), 3, 0.0,
                    "inf suffix");
  expect_matches_at(rs::core::AffineAbsCost(0.75, 4.3, 0.2), m, 1e-12,
                    "affine_abs fractional");
  expect_matches_at(rs::core::AffineAbsCost(2.0, 6.0, 1.0), m, 0.0,
                    "affine_abs integral");
  expect_matches_at(rs::core::QuadraticCost(0.31, 6.7, 1.1), m, 1e-12,
                    "quadratic");
  expect_matches_at(rs::core::QuadraticCost(0.0, 3.0, 2.5), m, 0.0,
                    "quadratic curvature 0");
  expect_matches_at(*sla_cost(1.5, 0.75, 4.0, 9.0, 2.0), m, 1e-12, "sla sum");
  expect_matches_at(*rs::core::make_hinge(1.25, 7.5), m, 1e-12, "hinge");
  expect_matches_at(*rs::core::make_shortfall_hinge(2.0, 5.0), m, 0.0,
                    "shortfall hinge");
  expect_matches_at(rs::core::LinearLoadSlotCost(0.8, 1.7, 4.6), m, 1e-12,
                    "linear load fractional");
  expect_matches_at(rs::core::LinearLoadSlotCost(2.0, 3.0, 5.0), m, 0.0,
                    "linear load integral");
  expect_matches_at(rs::core::LinearLoadSlotCost(1.0, 2.0, 0.0), m, 0.0,
                    "linear load idle");
  // Zero breakpoints: the whole feasible range is one affine segment, so
  // the family always fits the compact budget regardless of m.
  EXPECT_EQ(rs::core::LinearLoadSlotCost(0.8, 1.7, 4.6)
                .as_convex_pwl(m, 1)
                ->breakpoints(),
            0);
}

TEST(ConvexPwlConversion, MatchesAtThroughDecoratorChains) {
  rs::util::Rng rng(19);
  for (int stride : {1, 2, 3}) {
    const int m = 11;
    auto table = std::make_shared<rs::core::TableCost>(
        rs::workload::random_convex_table(rng, m * stride));
    auto padded = std::make_shared<rs::core::PaddedCost>(table, m * stride);
    auto strided = std::make_shared<rs::core::StrideCost>(padded, stride);
    const rs::core::ScaledCost scaled(strided, 0.5);
    expect_matches_at(scaled, m, 1e-9, "scaled(stride(padded(table)))");
    EXPECT_TRUE(scaled.is_convex());
    // Padding shorter than the requested row exercises the extension kink.
    const rs::core::PaddedCost short_padded(table, m / 2);
    expect_matches_at(short_padded, m, 1e-9, "short padded");
  }
}

TEST(ConvexPwlConversion, DeclinesWhereDocumented) {
  const int m = 12;
  // Opaque callables and the restricted slot model have no compact form.
  EXPECT_FALSE(rs::core::FunctionCost([](int x) { return 1.0 * x; })
                   .as_convex_pwl(m)
                   .has_value());
  auto load = std::make_shared<const std::function<double(double)>>(
      [](double z) { return 1.0 + z * z; });
  const rs::core::RestrictedSlotCost restricted(load, 3.3);
  EXPECT_FALSE(restricted.as_convex_pwl(m).has_value());
  EXPECT_TRUE(restricted.is_convex());  // convex by contract, just not PWL

  // Non-convex tables decline (and report so via is_convex).
  const rs::core::TableCost bumpy({0.0, 2.0, 1.0, 3.0});
  EXPECT_FALSE(bumpy.as_convex_pwl(3).has_value());
  EXPECT_FALSE(bumpy.is_convex());
  EXPECT_TRUE(rs::core::TableCost({0.0, 1.0, 3.0}).is_convex());

  // Budget: a quadratic needs one breakpoint per state.
  const rs::core::QuadraticCost quad(0.5, 6.0);
  EXPECT_FALSE(quad.as_convex_pwl(100, 32).has_value());
  EXPECT_TRUE(quad.as_convex_pwl(100, 128).has_value());

  // An all-infinite slot converts to the infinite function.
  const auto all_inf = rs::core::TableCost({kInf, kInf, kInf}).as_convex_pwl(2);
  ASSERT_TRUE(all_inf.has_value());
  EXPECT_TRUE(all_inf->is_infinite());
}

// --- tracker backend equivalence ---------------------------------------------

TEST(PwlTracker, MatchesDenseBackendAcrossFamilies) {
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    for (const auto& [T, m, seed] :
         {std::tuple<int, int, int>{18, 7, 101}, {9, 16, 102}, {25, 3, 103}}) {
      rs::util::Rng rng(static_cast<std::uint64_t>(seed));
      const Problem p =
          rs::workload::random_instance(rng, family, T, m, rng.uniform(0.3, 3.0));
      WorkFunctionTracker pwl(m, p.beta(), Backend::kPwl);
      WorkFunctionTracker dense(m, p.beta(), Backend::kDense);
      for (int t = 1; t <= T; ++t) {
        pwl.advance(p.f(t));
        dense.advance(p.f(t));
        ASSERT_TRUE(pwl.using_pwl());
        if (family == InstanceFamily::kFlatRegions) {
          // Exact cost plateaus: the backends may pick different (equally
          // minimal up to the documented ULP tolerance) tie positions —
          // assert optimality of each bound under the other backend's
          // values instead of positional equality.  The bit-exact tie
          // contract is covered by BitIdenticalOnIntegerInstances.
          EXPECT_NEAR(dense.chat_lower(pwl.x_lower()),
                      dense.chat_lower(dense.x_lower()), 1e-9)
              << " t=" << t;
          EXPECT_NEAR(dense.chat_upper(pwl.x_upper()),
                      dense.chat_upper(dense.x_upper()), 1e-9)
              << " t=" << t;
        } else {
          EXPECT_EQ(pwl.x_lower(), dense.x_lower())
              << rs::workload::family_name(family) << " t=" << t;
          EXPECT_EQ(pwl.x_upper(), dense.x_upper())
              << rs::workload::family_name(family) << " t=" << t;
        }
        for (int x = 0; x <= m; ++x) {
          const double dl = dense.chat_lower(x);
          const double du = dense.chat_upper(x);
          if (std::isinf(dl)) {
            EXPECT_TRUE(std::isinf(pwl.chat_lower(x))) << "x=" << x;
          } else {
            EXPECT_NEAR(pwl.chat_lower(x), dl, 1e-9 * std::max(1.0, dl))
                << "x=" << x;
          }
          if (std::isinf(du)) {
            EXPECT_TRUE(std::isinf(pwl.chat_upper(x))) << "x=" << x;
          } else {
            EXPECT_NEAR(pwl.chat_upper(x), du, 1e-9 * std::max(1.0, du))
                << "x=" << x;
          }
        }
      }
    }
  }
}

TEST(PwlTracker, BitIdenticalOnIntegerInstances) {
  rs::util::Rng rng(31);
  for (int trial = 0; trial < 12; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(3, 20));
    const int m = static_cast<int>(rng.uniform_int(1, 12));
    const Problem p = integer_instance(rng, T, m, 2.0);
    WorkFunctionTracker pwl(m, 2.0, Backend::kPwl);
    WorkFunctionTracker dense(m, 2.0, Backend::kDense);
    for (int t = 1; t <= T; ++t) {
      pwl.advance(p.f(t));
      dense.advance(p.f(t));
      EXPECT_EQ(pwl.x_lower(), dense.x_lower()) << "t=" << t;
      EXPECT_EQ(pwl.x_upper(), dense.x_upper()) << "t=" << t;
      for (int x = 0; x <= m; ++x) {
        EXPECT_EQ(pwl.chat_lower(x), dense.chat_lower(x))
            << "t=" << t << " x=" << x;
        EXPECT_EQ(pwl.chat_upper(x), dense.chat_upper(x))
            << "t=" << t << " x=" << x;
      }
    }
  }
}

TEST(PwlTracker, HybridFallsBackMidStreamAndStaysConsistent) {
  // Compact slots, then an opaque FunctionCost (no PWL form), then compact
  // again: the auto tracker materializes Ĉ and latches dense; bounds keep
  // matching the all-dense reference.
  rs::util::Rng rng(43);
  const int m = 9;
  const double beta = 1.5;
  std::vector<CostPtr> fs;
  for (int t = 0; t < 4; ++t) {
    fs.push_back(std::make_shared<rs::core::AffineAbsCost>(
        rng.uniform(0.2, 1.0), static_cast<double>(rng.uniform_int(0, m))));
  }
  fs.push_back(std::make_shared<rs::core::FunctionCost>(
      [](int x) { return 0.3 * x + 1.0; }, "opaque"));
  for (int t = 0; t < 4; ++t) {
    fs.push_back(std::make_shared<rs::core::AffineAbsCost>(
        rng.uniform(0.2, 1.0), static_cast<double>(rng.uniform_int(0, m))));
  }
  const Problem p(m, beta, std::move(fs));
  EXPECT_FALSE(rs::core::admits_compact_pwl(p));

  WorkFunctionTracker hybrid(m, beta);  // kAuto
  WorkFunctionTracker dense(m, beta, Backend::kDense);
  for (int t = 1; t <= p.horizon(); ++t) {
    hybrid.advance(p.f(t));
    dense.advance(p.f(t));
    EXPECT_EQ(hybrid.using_pwl(), t < 5) << "t=" << t;
    EXPECT_EQ(hybrid.x_lower(), dense.x_lower()) << "t=" << t;
    EXPECT_EQ(hybrid.x_upper(), dense.x_upper()) << "t=" << t;
    for (int x = 0; x <= m; ++x) {
      EXPECT_NEAR(hybrid.chat_lower(x), dense.chat_lower(x), 1e-9)
          << "t=" << t << " x=" << x;
    }
  }
}

TEST(PwlTracker, InfeasibleInstanceMirrorsDenseCorridor) {
  // An all-infinite slot makes every label +inf; the dense scans leave the
  // corridor at (0, m) from then on, and so must the PWL backend.
  const int m = 4;
  WorkFunctionTracker pwl(m, 1.0, Backend::kPwl);
  WorkFunctionTracker dense(m, 1.0, Backend::kDense);
  const rs::core::TableCost fine({1.0, 0.5, 2.0, 3.5, 5.0});
  const rs::core::TableCost dead({kInf, kInf, kInf, kInf, kInf});
  const std::vector<const rs::core::CostFunction*> slots = {&fine, &dead,
                                                            &fine};
  for (const rs::core::CostFunction* f : slots) {
    pwl.advance(*f);
    dense.advance(*f);
    EXPECT_EQ(pwl.x_lower(), dense.x_lower());
    EXPECT_EQ(pwl.x_upper(), dense.x_upper());
  }
  EXPECT_TRUE(std::isinf(pwl.chat_lower(0)));
  EXPECT_EQ(pwl.x_lower(), 0);
  EXPECT_EQ(pwl.x_upper(), m);
}

TEST(PwlTracker, ForcedBackendsValidateTheirInputs) {
  WorkFunctionTracker forced(4, 1.0, Backend::kPwl);
  EXPECT_THROW(forced.advance(std::vector<double>{0, 1, 2, 3, 4}),
               std::logic_error);
  const rs::core::FunctionCost opaque([](int x) { return 1.0 * x; });
  EXPECT_THROW(forced.advance(opaque), std::invalid_argument);

  // Forced-kPwl windowed LCP names the non-compact cost the same way.
  rs::online::WindowedLcp forced_window(Backend::kPwl);
  forced_window.reset(rs::online::OnlineContext{4, 1.0});
  const CostPtr opaque_ptr = std::make_shared<rs::core::FunctionCost>(
      [](int x) { return 1.0 * x; });
  EXPECT_THROW(forced_window.decide(opaque_ptr, {}), std::invalid_argument);

  // chat vectors force the dense backend (documented) — fine on kAuto.
  rs::util::Rng rng(5);
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kAffineAbs, 5, 6, 1.0);
  WorkFunctionTracker auto_tracker(6, 1.0);
  for (int t = 1; t <= 5; ++t) auto_tracker.advance(p.f(t));
  EXPECT_TRUE(auto_tracker.using_pwl());
  const std::vector<double>& row = auto_tracker.chat_lower_vector();
  EXPECT_FALSE(auto_tracker.using_pwl());
  for (int x = 0; x <= 6; ++x) {
    EXPECT_EQ(row[static_cast<std::size_t>(x)], auto_tracker.chat_lower(x));
  }
}

// --- LCP / windowed LCP / DP equivalence -------------------------------------

TEST(PwlBackend, LcpSchedulesMatchDenseAcrossFamilies) {
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    rs::util::Rng rng(211 + static_cast<std::uint64_t>(family));
    for (int trial = 0; trial < 4; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 30));
      const int m = static_cast<int>(rng.uniform_int(1, 12));
      const Problem p =
          rs::workload::random_instance(rng, family, T, m, rng.uniform(0.2, 3.0));
      // Forced kPwl: the auto budget would (rightly) route small dense
      // tables to the dense backend, which would make this comparison
      // vacuous for half the families.
      rs::online::Lcp pwl_lcp(Backend::kPwl);
      rs::online::Lcp dense_lcp(Backend::kDense);
      EXPECT_EQ(rs::online::run_online(pwl_lcp, p),
                rs::online::run_online(dense_lcp, p))
          << rs::workload::family_name(family);
    }
  }
}

TEST(PwlBackend, WindowedLcpMatchesDenseOnIntegerTieInstances) {
  // Exact plateaus everywhere: integer values make both backends' tie
  // decisions exact, so the windowed corridors must coincide bit for bit.
  rs::util::Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(4, 18));
    const int m = static_cast<int>(rng.uniform_int(2, 10));
    const Problem p = integer_instance(rng, T, m, 1.0);
    for (int window : {0, 1, 3}) {
      // Forced kPwl keeps the PWL pass engaged even where the auto budget
      // would prefer the dense rows for these table costs.
      rs::online::WindowedLcp pwl_lcp(Backend::kPwl);
      rs::online::WindowedLcp dense_lcp(Backend::kDense);
      EXPECT_EQ(rs::online::run_online(pwl_lcp, p, window),
                rs::online::run_online(dense_lcp, p, window))
          << "trial=" << trial << " w=" << window;
    }
  }
}

TEST(PwlBackend, WindowedLcpMatchesDenseOnSlaInstances) {
  // Integer parameters keep every windowed sum exact, so the corridors
  // must coincide bit for bit even on the hinges' exact-0 plateaus (the
  // fractional-parameter tie caveat is documented in DESIGN.md §8 and
  // covered value-wise by CompletionCostsMatchDensePass).
  rs::util::Rng rng(59);
  for (int trial = 0; trial < 6; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(5, 25));
    const int m = static_cast<int>(rng.uniform_int(4, 14));
    std::vector<CostPtr> fs;
    for (int t = 0; t < T; ++t) {
      const double knee = static_cast<double>(rng.uniform_int(1, m - 1));
      fs.push_back(sla_cost(static_cast<double>(rng.uniform_int(1, 3)),
                            static_cast<double>(rng.uniform_int(1, 2)), knee,
                            knee + static_cast<double>(rng.uniform_int(1, 3)),
                            static_cast<double>(rng.uniform_int(0, 2))));
    }
    const Problem p(m, static_cast<double>(rng.uniform_int(1, 3)),
                    std::move(fs));
    ASSERT_TRUE(rs::core::admits_compact_pwl(p));
    for (int window : {1, 4}) {
      rs::online::WindowedLcp auto_lcp;
      rs::online::WindowedLcp dense_lcp(Backend::kDense);
      EXPECT_EQ(rs::online::run_online(auto_lcp, p, window),
                rs::online::run_online(dense_lcp, p, window))
          << "trial=" << trial << " w=" << window;
    }
  }
}

TEST(PwlBackend, CompletionCostsMatchDensePass) {
  rs::util::Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(2, 12));
    const double beta = rng.uniform(0.3, 2.0);
    const int w = static_cast<int>(rng.uniform_int(1, 5));
    std::vector<CostPtr> window;
    std::vector<ConvexPwl> window_pwl;
    for (int j = 0; j < w; ++j) {
      const double knee = rng.uniform(0.0, static_cast<double>(m));
      window.push_back(sla_cost(rng.uniform(0.5, 2.0), rng.uniform(0.2, 1.0),
                                knee, knee + 1.0, rng.uniform(0.0, 0.5)));
      window_pwl.push_back(*window.back()->as_convex_pwl(m));
    }
    for (bool charge_up : {true, false}) {
      const std::vector<double> dense = rs::online::completion_costs(
          window, m, beta, charge_up);
      const ConvexPwl pwl = rs::online::completion_costs_pwl(
          window_pwl, m, beta, charge_up);
      for (int x = 0; x <= m; ++x) {
        EXPECT_NEAR(pwl.value_at(x), dense[static_cast<std::size_t>(x)], 1e-9)
            << "x=" << x << " up=" << charge_up;
      }
    }
  }
  // All-infinite window row: both passes saturate to +inf.
  const auto dead = rs::core::TableCost({kInf, kInf, kInf}).as_convex_pwl(2);
  ASSERT_TRUE(dead.has_value());
  const std::vector<ConvexPwl> dead_window = {*dead};
  EXPECT_TRUE(rs::online::completion_costs_pwl(dead_window, 2, 1.0, true)
                  .is_infinite());
}

TEST(PwlBackend, DpConvexAutoMatchesDenseSolver) {
  const rs::offline::DpSolver dense_dp;  // kDense
  const rs::offline::DpSolver fast_dp(rs::offline::DpSolver::Backend::kConvexAuto);
  for (InstanceFamily family : rs::workload::all_instance_families()) {
    rs::util::Rng rng(307 + static_cast<std::uint64_t>(family));
    for (int trial = 0; trial < 3; ++trial) {
      const int T = static_cast<int>(rng.uniform_int(1, 25));
      const int m = static_cast<int>(rng.uniform_int(1, 10));
      const Problem p =
          rs::workload::random_instance(rng, family, T, m, rng.uniform(0.3, 2.5));
      const double expected = dense_dp.solve_cost(p);
      const rs::offline::OfflineResult fast = fast_dp.solve(p);
      EXPECT_NEAR(fast.cost, expected, 1e-9 * std::max(1.0, expected))
          << rs::workload::family_name(family);
      EXPECT_NEAR(fast_dp.solve_cost(p), fast.cost, 1e-12);
      // The fast schedule is the Lemma-11 one; it must price to the
      // optimal cost.
      EXPECT_NEAR(rs::core::total_cost(p, fast.schedule), expected,
                  1e-9 * std::max(1.0, expected))
          << rs::workload::family_name(family);
      // And coincide with the backward solver's dense construction.
      EXPECT_EQ(fast.schedule,
                rs::offline::backward_schedule(
                    rs::offline::compute_bounds(p, Backend::kDense)))
          << rs::workload::family_name(family);
    }
  }
}

TEST(PwlBackend, DpConvexAutoBitIdenticalOnIntegerInstances) {
  rs::util::Rng rng(71);
  const rs::offline::DpSolver dense_dp;
  const rs::offline::DpSolver fast_dp(rs::offline::DpSolver::Backend::kConvexAuto);
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 15));
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    const Problem p = integer_instance(rng, T, m, 3.0);
    EXPECT_EQ(fast_dp.solve_cost(p), dense_dp.solve_cost(p)) << trial;
  }
}

TEST(PwlBackend, DpConvexAutoHandlesEdgeInstances) {
  const rs::offline::DpSolver fast_dp(rs::offline::DpSolver::Backend::kConvexAuto);
  const Problem empty(4, 1.0, {});
  EXPECT_EQ(fast_dp.solve(empty).cost, 0.0);
  EXPECT_TRUE(fast_dp.solve(empty).schedule.empty());

  const Problem tiny = rs::core::make_table_problem(0, 1.0, {{2.0}, {3.0}});
  const rs::offline::OfflineResult r = fast_dp.solve(tiny);
  EXPECT_EQ(r.cost, 5.0);
  EXPECT_EQ(r.schedule, Schedule({0, 0}));

  const Problem infeasible = rs::core::make_table_problem(
      2, 1.0, {{1.0, 1.0, 1.0}, {kInf, kInf, kInf}});
  const rs::offline::OfflineResult dead = fast_dp.solve(infeasible);
  EXPECT_TRUE(std::isinf(dead.cost));
  EXPECT_TRUE(dead.schedule.empty());
}

TEST(PwlBackend, BreakpointCountStaysSmallOnCompactFamilies) {
  // The scaling claim in miniature: K stays bounded (and far below m) as
  // the tracker runs, because the relax clips retire drifting slopes.
  rs::util::Rng rng(83);
  const int m = 4096;
  const double beta = 3.0;
  WorkFunctionTracker tracker(m, beta, Backend::kPwl);
  int max_breakpoints = 0;
  for (int t = 0; t < 200; ++t) {
    const rs::core::AffineAbsCost f(rng.uniform(0.2, 1.0),
                                    rng.uniform(0.0, static_cast<double>(m)));
    tracker.advance(f);
    max_breakpoints = std::max(max_breakpoints, tracker.breakpoint_count());
  }
  EXPECT_GT(max_breakpoints, 0);
  EXPECT_LT(max_breakpoints, 64) << "K should be m-independent and small";
}
