// Round-trip tests for schedule/problem CSV serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "core/serialization.hpp"
#include "offline/dp_solver.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::core;
using rs::util::kInf;

TEST(ScheduleCsv, RoundTrip) {
  const Schedule x = {0, 3, 2, 2, 0, 5};
  EXPECT_EQ(schedule_from_csv(schedule_to_csv(x)), x);
}

TEST(ScheduleCsv, EmptySchedule) {
  EXPECT_TRUE(schedule_from_csv(schedule_to_csv({})).empty());
}

TEST(ScheduleCsv, FileRoundTrip) {
  const Schedule x = {1, 2, 1};
  const std::string path = ::testing::TempDir() + "/rs_schedule.csv";
  write_schedule_csv(x, path);
  EXPECT_EQ(read_schedule_csv(path), x);
}

TEST(ScheduleCsv, RejectsCorruptInput) {
  EXPECT_THROW(schedule_from_csv("bad,header\n1,2\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_csv("t,x\n2,1\n"), std::runtime_error);  // gap
  EXPECT_THROW(schedule_from_csv("t,x\n1\n"), std::runtime_error);
}

TEST(ProblemCsv, RoundTripPreservesCostsExactly) {
  rs::util::Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Problem p = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kConvexTable, T, m,
        rng.uniform(0.2, 3.0));
    const Problem q = problem_from_csv(problem_to_csv(p));
    ASSERT_EQ(q.horizon(), T);
    ASSERT_EQ(q.max_servers(), m);
    EXPECT_DOUBLE_EQ(q.beta(), p.beta());
    for (int t = 1; t <= T; ++t) {
      for (int x = 0; x <= m; ++x) {
        EXPECT_DOUBLE_EQ(q.cost_at(t, x), p.cost_at(t, x));
      }
    }
    // Optima must survive the round trip bit-exactly.
    EXPECT_DOUBLE_EQ(rs::offline::DpSolver().solve_cost(p),
                     rs::offline::DpSolver().solve_cost(q));
  }
}

TEST(ProblemCsv, LinearLoadSlotCostRoundTripsWithConvexPwlEquivalence) {
  // The linear-tariff restricted model materializes to tables on export;
  // the roundtripped instance must (a) preserve every cost value exactly,
  // including the infeasibility prefix, (b) stay structurally convex, and
  // (c) keep an exact convex-PWL form whose values match the original
  // family's form — i.e. the instance still rides the m-independent
  // backend after a roundtrip.
  rs::util::Rng rng(89);
  for (int trial = 0; trial < 8; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 10));
    const int m = static_cast<int>(rng.uniform_int(2, 9));
    const bool integral = trial % 2 == 0;
    std::vector<CostPtr> fs;
    for (int t = 0; t < T; ++t) {
      const double base =
          integral ? static_cast<double>(rng.uniform_int(0, 3))
                   : rng.uniform(0.0, 2.5);
      const double rate =
          integral ? static_cast<double>(rng.uniform_int(0, 4))
                   : rng.uniform(0.0, 3.0);
      const double lambda =
          integral ? static_cast<double>(rng.uniform_int(0, m))
                   : rng.uniform(0.0, static_cast<double>(m));
      fs.push_back(
          std::make_shared<LinearLoadSlotCost>(base, rate, lambda));
    }
    const Problem p(m, 1.5, std::move(fs));
    const Problem q = problem_from_csv(problem_to_csv(p));
    ASSERT_EQ(q.horizon(), T);
    for (int t = 1; t <= T; ++t) {
      EXPECT_TRUE(p.f(t).is_convex());
      EXPECT_TRUE(q.f(t).is_convex()) << "t=" << t << " trial=" << trial;
      for (int x = 0; x <= m; ++x) {
        if (std::isinf(p.cost_at(t, x))) {
          EXPECT_TRUE(std::isinf(q.cost_at(t, x))) << "t=" << t << " x=" << x;
        } else {
          EXPECT_DOUBLE_EQ(q.cost_at(t, x), p.cost_at(t, x))
              << "t=" << t << " x=" << x;
        }
      }
      const auto before = p.f(t).as_convex_pwl(m);
      const auto after = q.f(t).as_convex_pwl(m);
      ASSERT_TRUE(before.has_value()) << "t=" << t;
      ASSERT_TRUE(after.has_value()) << "t=" << t << " trial=" << trial;
      for (int x = 0; x <= m; ++x) {
        const double expected = before->value_at(x);
        if (std::isinf(expected)) {
          EXPECT_TRUE(std::isinf(after->value_at(x)));
        } else if (integral) {
          EXPECT_EQ(after->value_at(x), expected) << "t=" << t << " x=" << x;
        } else {
          EXPECT_NEAR(after->value_at(x), expected,
                      1e-9 * std::max(1.0, std::fabs(expected)))
              << "t=" << t << " x=" << x;
        }
      }
    }
    // Optima survive the roundtrip (bit-exactly on integral tariffs).
    const double before_cost = rs::offline::DpSolver().solve_cost(p);
    const double after_cost = rs::offline::DpSolver().solve_cost(q);
    if (std::isinf(before_cost)) {
      EXPECT_TRUE(std::isinf(after_cost));
    } else if (integral) {
      EXPECT_EQ(after_cost, before_cost);
    } else {
      EXPECT_NEAR(after_cost, before_cost,
                  1e-9 * std::max(1.0, before_cost));
    }
  }
}

TEST(ProblemCsv, InfinityRoundTrips) {
  const Problem p = make_table_problem(
      2, 1.5, {{kInf, 1.0, 2.0}, {0.5, kInf, kInf}});
  const Problem q = problem_from_csv(problem_to_csv(p));
  EXPECT_TRUE(std::isinf(q.cost_at(1, 0)));
  EXPECT_TRUE(std::isinf(q.cost_at(2, 2)));
  EXPECT_DOUBLE_EQ(q.cost_at(1, 1), 1.0);
}

TEST(ProblemCsv, FileRoundTrip) {
  const Problem p = make_table_problem(1, 2.0, {{0.25, 1.75}});
  const std::string path = ::testing::TempDir() + "/rs_problem.csv";
  write_problem_csv(p, path);
  const Problem q = read_problem_csv(path);
  EXPECT_DOUBLE_EQ(q.cost_at(1, 1), 1.75);
  EXPECT_DOUBLE_EQ(q.beta(), 2.0);
}

TEST(ProblemCsv, RejectsCorruptInput) {
  EXPECT_THROW(problem_from_csv("t,f0\n1,0.5\n"), std::runtime_error);
  EXPECT_THROW(problem_from_csv("# m=1 beta=1\nt,f0\n1,0.5\n"),
               std::runtime_error);  // header arity != m+2
  EXPECT_THROW(problem_from_csv("# m=1 beta=1\nt,f0,f1\n1,0.5\n"),
               std::runtime_error);  // row arity
}

// --- format tags and reader strictness (PR-7 hardening) ---------------------

TEST(FormatTag, WritersEmitVersionTags) {
  EXPECT_NE(schedule_to_csv({1, 2}).find("# format=rightsizer-schedule-v1"),
            std::string::npos);
  const Problem p = make_table_problem(1, 1.0, {{0.0, 1.0}});
  EXPECT_NE(problem_to_csv(p).find("# format=rightsizer-problem-v1"),
            std::string::npos);
}

TEST(FormatTag, UnknownTagRejectedLegacyUntaggedAccepted) {
  // A future/foreign tag is an explicit rejection...
  EXPECT_THROW(
      schedule_from_csv("# format=rightsizer-schedule-v999\nt,x\n1,2\n"),
      std::runtime_error);
  EXPECT_THROW(problem_from_csv(
                   "# format=rightsizer-problem-v999\n# m=1 beta=1\n"
                   "t,f0,f1\n1,0.5,1.5\n"),
               std::runtime_error);
  // ...a schedule tag on a problem artifact is too...
  EXPECT_THROW(problem_from_csv(
                   "# format=rightsizer-schedule-v1\n# m=1 beta=1\n"
                   "t,f0,f1\n1,0.5,1.5\n"),
               std::runtime_error);
  // ...but pre-versioning artifacts (no tag at all) still load.
  EXPECT_EQ(schedule_from_csv("t,x\n1,2\n2,0\n"), (Schedule{2, 0}));
  const Problem legacy =
      problem_from_csv("# m=1 beta=1\nt,f0,f1\n1,0.5,1.5\n");
  EXPECT_DOUBLE_EQ(legacy.cost_at(1, 1), 1.5);
}

TEST(FormatTag, TaggedRoundTripsParse) {
  // The writers' own output must of course pass the tag check.
  const Schedule x = {0, 4, 1};
  EXPECT_EQ(schedule_from_csv(schedule_to_csv(x)), x);
  const Problem p = make_table_problem(2, 1.5, {{0.0, 1.0, 3.0}});
  EXPECT_DOUBLE_EQ(problem_from_csv(problem_to_csv(p)).cost_at(1, 2), 3.0);
}

TEST(ScheduleCsv, RejectsMalformedAndNegativeValues) {
  // Trailing garbage in a numeric field is malformed, not a value.
  EXPECT_THROW(schedule_from_csv("t,x\n1,2x\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_csv("t,x\n1x,2\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_csv("t,x\n1,\n"), std::runtime_error);
  // A negative server count can never be a schedule state.
  EXPECT_THROW(schedule_from_csv("t,x\n1,-3\n"), std::runtime_error);
  // Non-contiguous / duplicated slots.
  EXPECT_THROW(schedule_from_csv("t,x\n1,1\n1,2\n"), std::runtime_error);
  EXPECT_THROW(schedule_from_csv("t,x\n1,1\n3,2\n"), std::runtime_error);
}

TEST(ProblemCsv, RejectsMalformedMetaAndValues) {
  // Malformed meta integers / beta.
  EXPECT_THROW(problem_from_csv("# m=1x beta=1\nt,f0,f1\n1,0.5,1.5\n"),
               std::runtime_error);
  EXPECT_THROW(problem_from_csv("# m=1 beta=oops\nt,f0,f1\n1,0.5,1.5\n"),
               std::runtime_error);
  EXPECT_THROW(problem_from_csv("# m=1 beta=inf\nt,f0,f1\n1,0.5,1.5\n"),
               std::runtime_error);  // beta must be finite
  EXPECT_THROW(problem_from_csv("# m=1 beta=-2\nt,f0,f1\n1,0.5,1.5\n"),
               std::runtime_error);
  // Malformed cost fields.
  EXPECT_THROW(problem_from_csv("# m=1 beta=1\nt,f0,f1\n1,0.5x,1.5\n"),
               std::runtime_error);
  // Costs outside the extended-real contract [0, +inf].
  EXPECT_THROW(problem_from_csv("# m=1 beta=1\nt,f0,f1\n1,nan,1.5\n"),
               std::runtime_error);
  EXPECT_THROW(problem_from_csv("# m=1 beta=1\nt,f0,f1\n1,-inf,1.5\n"),
               std::runtime_error);
  EXPECT_THROW(problem_from_csv("# m=1 beta=1\nt,f0,f1\n1,-0.5,1.5\n"),
               std::runtime_error);
  // +inf is within the contract (infeasible state, not a fault).
  const Problem ok = problem_from_csv("# m=1 beta=1\nt,f0,f1\n1,inf,1.5\n");
  EXPECT_TRUE(std::isinf(ok.cost_at(1, 0)));
  // Non-contiguous slots.
  EXPECT_THROW(problem_from_csv(
                   "# m=1 beta=1\nt,f0,f1\n1,0.5,1.5\n3,0.5,1.5\n"),
               std::runtime_error);
  // Wrong header name.
  EXPECT_THROW(problem_from_csv("# m=1 beta=1\nq,f0,f1\n1,0.5,1.5\n"),
               std::runtime_error);
}

}  // namespace
