// Unit and property tests for the cost-function families, the convexity
// validator, minimizer searches, and the continuous extension (eq. 3).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/cost_function.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"

namespace {

using namespace rs::core;
using rs::util::kInf;

TEST(TableCost, EvaluatesTableAndExtendsLinearly) {
  TableCost f({5.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(f.at(0), 5.0);
  EXPECT_DOUBLE_EQ(f.at(3), 4.0);
  // extension slope = 4 - 2 = 2
  EXPECT_DOUBLE_EQ(f.at(4), 6.0);
  EXPECT_DOUBLE_EQ(f.at(6), 10.0);
}

TEST(TableCost, EmptyTableThrows) {
  EXPECT_THROW(TableCost({}), std::invalid_argument);
}

TEST(TableCost, NegativeArgumentThrows) {
  TableCost f({1.0});
  EXPECT_THROW(f.at(-1), std::invalid_argument);
}

TEST(TableCost, SingleEntryExtendsFlat) {
  TableCost f({7.0});
  EXPECT_DOUBLE_EQ(f.at(0), 7.0);
  EXPECT_DOUBLE_EQ(f.at(10), 7.0);
}

TEST(AffineAbsCost, MatchesPhiFunctions) {
  // ϕ0(x) = ε|x|, ϕ1(x) = ε|1 - x| with ε = 0.25
  AffineAbsCost phi0(0.25, 0.0);
  AffineAbsCost phi1(0.25, 1.0);
  EXPECT_DOUBLE_EQ(phi0.at(0), 0.0);
  EXPECT_DOUBLE_EQ(phi0.at(4), 1.0);
  EXPECT_DOUBLE_EQ(phi1.at(1), 0.0);
  EXPECT_DOUBLE_EQ(phi1.at(0), 0.25);
  EXPECT_DOUBLE_EQ(phi1.at_real(0.5), 0.125);
}

TEST(AffineAbsCost, NegativeSlopeThrows) {
  EXPECT_THROW(AffineAbsCost(-1.0, 0.0), std::invalid_argument);
}

TEST(QuadraticCost, EvaluatesAndValidates) {
  QuadraticCost f(2.0, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(f.at(3), 1.0);
  EXPECT_DOUBLE_EQ(f.at(5), 9.0);
  EXPECT_THROW(QuadraticCost(-0.1, 0.0), std::invalid_argument);
}

TEST(FunctionCost, WrapsCallable) {
  FunctionCost f([](int x) { return static_cast<double>(x * x); }, "sq");
  EXPECT_DOUBLE_EQ(f.at(4), 16.0);
  EXPECT_EQ(f.name(), "sq");
  EXPECT_THROW(FunctionCost(nullptr), std::invalid_argument);
}

TEST(RestrictedSlotCost, ImplementsPerspectiveWithConstraint) {
  // f(z) = z^2: slot cost x * (λ/x)^2 = λ^2 / x for x >= λ.
  auto f = std::make_shared<const std::function<double(double)>>(
      [](double z) { return z * z; });
  RestrictedSlotCost slot(f, 2.0);
  EXPECT_TRUE(std::isinf(slot.at(1)));  // below λ: infeasible
  EXPECT_DOUBLE_EQ(slot.at(2), 2.0);    // 2 * 1^2
  EXPECT_DOUBLE_EQ(slot.at(4), 1.0);    // 4 * (1/2)^2
  EXPECT_DOUBLE_EQ(slot.lambda(), 2.0);
}

TEST(RestrictedSlotCost, ZeroWorkloadAllowsEmptyCenter) {
  auto f = std::make_shared<const std::function<double(double)>>(
      [](double z) { return 1.0 + z; });  // nonzero idle cost
  RestrictedSlotCost slot(f, 0.0);
  EXPECT_DOUBLE_EQ(slot.at(0), 0.0);
  EXPECT_DOUBLE_EQ(slot.at(3), 3.0);  // 3 * f(0)
}

TEST(RestrictedSlotCost, NegativeWorkloadThrows) {
  auto f = std::make_shared<const std::function<double(double)>>(
      [](double) { return 0.0; });
  EXPECT_THROW(RestrictedSlotCost(f, -1.0), std::invalid_argument);
}

TEST(LinearLoadSlotCost, ClosedFormMatchesRestrictedPerspective) {
  // f(z) = base + rate·z, so x·f(λ/x) = base·x + rate·λ on x >= λ — the
  // LinearLoadSlotCost closed form must agree with RestrictedSlotCost over
  // the same tariff everywhere (both +inf below λ).
  const double base = 0.75;
  const double rate = 1.5;
  const double lambda = 3.3;
  auto f = std::make_shared<const std::function<double(double)>>(
      [base, rate](double z) { return base + rate * z; });
  const RestrictedSlotCost opaque(f, lambda);
  const LinearLoadSlotCost linear(base, rate, lambda);
  for (int x = 0; x <= 12; ++x) {
    if (std::isinf(opaque.at(x))) {
      EXPECT_TRUE(std::isinf(linear.at(x))) << "x=" << x;
    } else {
      EXPECT_NEAR(linear.at(x), opaque.at(x), 1e-12) << "x=" << x;
    }
  }
  EXPECT_TRUE(linear.is_convex());
  EXPECT_DOUBLE_EQ(linear.base(), base);
  EXPECT_DOUBLE_EQ(linear.rate(), rate);
  EXPECT_DOUBLE_EQ(linear.lambda(), lambda);
}

TEST(LinearLoadSlotCost, EvalRowBitIdenticalToAt) {
  const LinearLoadSlotCost slot(0.3, 2.0, 4.7);
  const int m = 11;
  std::vector<double> row(static_cast<std::size_t>(m) + 1);
  slot.eval_row(m, row);
  for (int x = 0; x <= m; ++x) {
    EXPECT_EQ(row[static_cast<std::size_t>(x)], slot.at(x)) << "x=" << x;
  }
}

TEST(LinearLoadSlotCost, ZeroWorkloadAllowsEmptyCenter) {
  const LinearLoadSlotCost slot(1.25, 3.0, 0.0);
  EXPECT_DOUBLE_EQ(slot.at(0), 0.0);
  EXPECT_DOUBLE_EQ(slot.at(4), 5.0);  // base·x, no load term
  const CostFunctionReport report = validate_cost_function(slot, 9);
  EXPECT_TRUE(report.ok());
}

TEST(LinearLoadSlotCost, WorkloadBeyondCapacityIsAllInfinite) {
  const LinearLoadSlotCost slot(1.0, 1.0, 100.5);
  for (int x = 0; x <= 8; ++x) EXPECT_TRUE(std::isinf(slot.at(x)));
  const auto form = slot.as_convex_pwl(8);
  ASSERT_TRUE(form.has_value());
  EXPECT_TRUE(form->is_infinite());
}

TEST(LinearLoadSlotCost, RejectsInvalidParameters) {
  EXPECT_THROW(LinearLoadSlotCost(-1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LinearLoadSlotCost(0.0, -1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LinearLoadSlotCost(0.0, 0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(LinearLoadSlotCost(0.0, 0.0, std::nan("")),
               std::invalid_argument);
  EXPECT_THROW(LinearLoadSlotCost(1.0, 1.0, 2.0).at(-1),
               std::invalid_argument);
}

TEST(RestrictedSlotCost, PerspectiveIsConvex) {
  // Perspective of several convex f's must validate as convex with an inf
  // prefix at x < λ.
  for (double lambda : {0.0, 0.5, 1.0, 2.5, 7.0}) {
    auto f = std::make_shared<const std::function<double(double)>>(
        [](double z) { return 0.3 + z * z + 0.5 * z; });
    RestrictedSlotCost slot(f, lambda);
    const CostFunctionReport report = validate_cost_function(slot, 16);
    EXPECT_TRUE(report.ok()) << "lambda=" << lambda;
    EXPECT_EQ(report.first_finite,
              lambda == 0.0 ? 0 : static_cast<int>(std::ceil(lambda)));
  }
}

TEST(ScaledCost, ScalesValues) {
  auto base = std::make_shared<AffineAbsCost>(1.0, 0.0);
  ScaledCost f(base, 0.5);
  EXPECT_DOUBLE_EQ(f.at(4), 2.0);
  EXPECT_DOUBLE_EQ(f.at_real(1.5), 0.75);
  EXPECT_THROW(ScaledCost(base, -1.0), std::invalid_argument);
  EXPECT_THROW(ScaledCost(nullptr, 1.0), std::invalid_argument);
}

TEST(StrideCost, ImplementsPsiComposition) {
  auto base = std::make_shared<QuadraticCost>(1.0, 0.0);
  StrideCost f(base, 4);
  EXPECT_DOUBLE_EQ(f.at(3), 144.0);  // (3*4)^2
  EXPECT_THROW(StrideCost(base, 0), std::invalid_argument);
}

TEST(PaddedCost, KeepsBaseAndDominatesAbove) {
  auto base = std::make_shared<TableCost>(std::vector<double>{4.0, 1.0, 3.0});
  PaddedCost f(base, 2);
  EXPECT_DOUBLE_EQ(f.at(0), 4.0);
  EXPECT_DOUBLE_EQ(f.at(2), 3.0);
  // extension slope = max(3-1, 0) + 1 = 3
  EXPECT_DOUBLE_EQ(f.at(3), 6.0);
  EXPECT_DOUBLE_EQ(f.at(5), 12.0);
  // padded region is strictly increasing => states > m dominated
  EXPECT_GT(f.at(3), f.at(2));
}

TEST(PaddedCost, PaddedFunctionStaysConvex) {
  rs::util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    // Random convex table via random non-decreasing slopes.
    const int m = 5;
    std::vector<double> values(m + 1);
    values[0] = rng.uniform(0.0, 5.0);
    double slope = rng.uniform(-3.0, 0.0);
    for (int x = 1; x <= m; ++x) {
      slope += rng.uniform(0.0, 2.0);
      values[x] = values[x - 1] + slope;
    }
    const double shift = *std::min_element(values.begin(), values.end());
    for (double& v : values) v -= std::min(shift, 0.0);
    auto base = std::make_shared<TableCost>(values);
    PaddedCost padded(base, m);
    EXPECT_TRUE(validate_cost_function(padded, 2 * m).ok());
  }
}

TEST(Validate, AcceptsConvexRejectsConcave) {
  TableCost convex({3.0, 1.0, 0.0, 0.5, 2.0});
  EXPECT_TRUE(validate_cost_function(convex, 4).ok());

  TableCost concave({0.0, 2.0, 3.0, 3.5, 3.6});  // slopes decreasing
  EXPECT_FALSE(validate_cost_function(concave, 4).convex);
}

TEST(Validate, RejectsNegative) {
  TableCost f({1.0, -0.5, 2.0});
  EXPECT_FALSE(validate_cost_function(f, 2).non_negative);
}

TEST(Validate, InfPrefixAndSuffixAllowed) {
  TableCost f({kInf, kInf, 1.0, 0.5, 2.0, kInf});
  const CostFunctionReport report = validate_cost_function(f, 5);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.first_finite, 2);
  EXPECT_EQ(report.last_finite, 4);
}

TEST(Validate, GapInFiniteRangeRejected) {
  TableCost f({1.0, kInf, 1.0});
  const CostFunctionReport report = validate_cost_function(f, 2);
  EXPECT_FALSE(report.contiguous_finite_range);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, AllInfiniteReported) {
  TableCost f({kInf, kInf});
  const CostFunctionReport report = validate_cost_function(f, 1);
  EXPECT_FALSE(report.finite_somewhere);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, NanRejected) {
  TableCost f({0.0, std::nan(""), 1.0});
  EXPECT_FALSE(validate_cost_function(f, 2).ok());
}

TEST(Minimizers, ScanFindsSmallestAndLargest) {
  TableCost f({4.0, 2.0, 2.0, 2.0, 5.0});
  EXPECT_EQ(smallest_minimizer_scan(f, 4), 1);
  EXPECT_EQ(largest_minimizer_scan(f, 4), 3);
}

TEST(Minimizers, ConvexBinarySearchMatchesScan) {
  rs::util::Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 64));
    const double center = rng.uniform(-2.0, m + 2.0);
    const double curvature = rng.uniform(0.1, 3.0);
    QuadraticCost f(curvature, center);
    EXPECT_EQ(smallest_minimizer_convex(f, m), smallest_minimizer_scan(f, m))
        << "m=" << m << " center=" << center;
  }
}

TEST(Minimizers, ConvexSearchHandlesFlatRegions) {
  TableCost f({5.0, 3.0, 3.0, 3.0, 4.0});
  EXPECT_EQ(smallest_minimizer_convex(f, 4), 1);
}

TEST(Minimizers, ConvexSearchHandlesInfPrefix) {
  TableCost f({kInf, kInf, 4.0, 2.0, 3.0});
  EXPECT_EQ(smallest_minimizer_convex(f, 4), 3);
  EXPECT_EQ(smallest_minimizer_scan(f, 4), 3);
}

TEST(Interpolation, MatchesEquationThree) {
  TableCost f({2.0, 0.0, 4.0});
  // f̄(x) = (⌈x⌉-x) f(⌊x⌋) + (x-⌊x⌋) f(⌈x⌉)
  EXPECT_DOUBLE_EQ(interpolate(f, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(interpolate(f, 0.25), 1.5);
  EXPECT_DOUBLE_EQ(interpolate(f, 1.5), 2.0);
  EXPECT_DOUBLE_EQ(interpolate(f, 2.0), 4.0);
}

TEST(Interpolation, DefaultAtRealAgreesWithInterpolate) {
  TableCost f({3.0, 1.0, 2.0, 6.0});
  for (double x = 0.0; x <= 3.0; x += 0.125) {
    EXPECT_DOUBLE_EQ(f.at_real(x), interpolate(f, x));
  }
}

TEST(Interpolation, ExactOverridesCoincideOnIntegerBreakpoints) {
  // AffineAbs with integer center: closed form equals interpolation.
  AffineAbsCost f(0.5, 2.0, 0.25);
  for (double x = 0.0; x <= 5.0; x += 0.25) {
    EXPECT_NEAR(f.at_real(x), interpolate(f, x), 1e-12);
  }
}

TEST(Interpolation, InfinityPropagates) {
  TableCost f({kInf, 1.0, 2.0});
  EXPECT_TRUE(std::isinf(interpolate(f, 0.5)));
  EXPECT_DOUBLE_EQ(interpolate(f, 1.0), 1.0);
}

TEST(Interpolation, NegativeArgumentThrows) {
  TableCost f({1.0});
  EXPECT_THROW(f.at_real(-0.5), std::invalid_argument);
}

}  // namespace
