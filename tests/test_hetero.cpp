// Tests for the heterogeneous extension: product-state DP correctness
// (brute force + homogeneous reduction), separable decomposition, and the
// two-type workload-splitting instance builder.
#include <gtest/gtest.h>

#include <cmath>

#include "hetero/hetero_problem.hpp"
#include "hetero/hetero_solver.hpp"
#include "offline/dp_solver.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/generators.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::hetero;
using rs::util::kInf;

HeteroProblem random_separable(rs::util::Rng& rng, int T,
                               const HeteroConfig& config) {
  std::vector<HeteroCostPtr> fs;
  for (int t = 0; t < T; ++t) {
    std::vector<rs::core::CostPtr> parts;
    for (int m : config.capacity) {
      parts.push_back(std::make_shared<rs::core::TableCost>(
          rs::workload::random_convex_table(rng, m)));
    }
    fs.push_back(std::make_shared<SeparableHeteroCost>(std::move(parts)));
  }
  return HeteroProblem(config, std::move(fs));
}

TEST(HeteroConfig, Validation) {
  HeteroConfig bad;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.capacity = {2, 3};
  bad.beta = {1.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.beta = {1.0, 0.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.beta = {1.0, 2.0};
  EXPECT_NO_THROW(bad.validate());
  EXPECT_EQ(bad.state_count(), 12);
}

TEST(HeteroProblem, EnumerateStatesCoversProduct) {
  HeteroConfig config;
  config.capacity = {2, 1};
  config.beta = {1.0, 1.0};
  const std::vector<HeteroState> states = enumerate_states(config);
  ASSERT_EQ(states.size(), 6u);
  EXPECT_EQ(states.front(), (HeteroState{0, 0}));
  EXPECT_EQ(states.back(), (HeteroState{2, 1}));
}

TEST(HeteroProblem, TotalCostHandComputed) {
  HeteroConfig config;
  config.capacity = {1, 1};
  config.beta = {2.0, 3.0};
  std::vector<HeteroCostPtr> fs;
  for (int t = 0; t < 2; ++t) {
    fs.push_back(std::make_shared<FunctionHeteroCost>(
        [](const HeteroState& x) {
          return static_cast<double>(x[0] + 2 * x[1]);
        }));
  }
  const HeteroProblem p(config, std::move(fs));
  // Schedule: (1,1) then (0,1): op 3 + 2; switching 2+3 then 0.
  const HeteroSchedule x = {{1, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(hetero_total_cost(p, x), 3.0 + 2.0 + 2.0 + 3.0);
}

TEST(HeteroDp, MatchesBruteForceOnTinyInstances) {
  rs::util::Rng rng(71);
  for (int trial = 0; trial < 8; ++trial) {
    HeteroConfig config;
    config.capacity = {2, 2};
    config.beta = {rng.uniform(0.3, 2.0), rng.uniform(0.3, 2.0)};
    const int T = static_cast<int>(rng.uniform_int(1, 4));
    const HeteroProblem p = random_separable(rng, T, config);

    const HeteroResult dp = solve_hetero_dp(p);

    // Brute force over all S^T joint schedules.
    const std::vector<HeteroState> states = enumerate_states(config);
    double best = kInf;
    std::vector<std::size_t> pick(static_cast<std::size_t>(T), 0);
    for (;;) {
      HeteroSchedule schedule;
      for (std::size_t index : pick) schedule.push_back(states[index]);
      best = std::min(best, hetero_total_cost(p, schedule));
      int position = 0;
      while (position < T) {
        if (pick[static_cast<std::size_t>(position)] + 1 < states.size()) {
          ++pick[static_cast<std::size_t>(position)];
          break;
        }
        pick[static_cast<std::size_t>(position)] = 0;
        ++position;
      }
      if (position == T) break;
    }
    EXPECT_NEAR(dp.cost, best, 1e-9) << "trial " << trial;
    EXPECT_NEAR(hetero_total_cost(p, dp.schedule), dp.cost, 1e-9);
  }
}

TEST(HeteroDp, SingleTypeReducesToHomogeneousSolver) {
  rs::util::Rng rng(72);
  for (int trial = 0; trial < 8; ++trial) {
    const int m = static_cast<int>(rng.uniform_int(1, 6));
    const int T = static_cast<int>(rng.uniform_int(1, 10));
    const double beta = rng.uniform(0.3, 2.5);
    const rs::core::Problem homogeneous = rs::workload::random_instance(
        rng, rs::workload::InstanceFamily::kConvexTable, T, m, beta);

    HeteroConfig config;
    config.capacity = {m};
    config.beta = {beta};
    std::vector<HeteroCostPtr> fs;
    for (int t = 1; t <= T; ++t) {
      fs.push_back(std::make_shared<SeparableHeteroCost>(
          std::vector<rs::core::CostPtr>{homogeneous.f_ptr(t)}));
    }
    const HeteroProblem p(config, std::move(fs));
    EXPECT_NEAR(solve_hetero_dp(p).cost,
                rs::offline::DpSolver().solve_cost(homogeneous), 1e-9);
  }
}

TEST(HeteroSeparable, DecompositionEqualsJointDp) {
  rs::util::Rng rng(73);
  for (int trial = 0; trial < 6; ++trial) {
    HeteroConfig config;
    config.capacity = {3, 4};
    config.beta = {rng.uniform(0.3, 2.0), rng.uniform(0.3, 2.0)};
    const int T = static_cast<int>(rng.uniform_int(1, 8));
    const HeteroProblem p = random_separable(rng, T, config);
    const HeteroResult joint = solve_hetero_dp(p);
    const HeteroResult decomposed = solve_separable(p);
    EXPECT_NEAR(joint.cost, decomposed.cost, 1e-9);
    EXPECT_NEAR(hetero_total_cost(p, decomposed.schedule), decomposed.cost,
                1e-9);
  }
}

TEST(HeteroSeparable, RejectsJointCosts) {
  HeteroConfig config;
  config.capacity = {1, 1};
  config.beta = {1.0, 1.0};
  std::vector<HeteroCostPtr> fs = {std::make_shared<FunctionHeteroCost>(
      [](const HeteroState& x) { return static_cast<double>(x[0] * x[1]); })};
  const HeteroProblem p(config, std::move(fs));
  EXPECT_THROW(solve_separable(p), std::invalid_argument);
}

TEST(TwoType, SplitPrefersEfficientServersAtLowLoad) {
  // Type A: fast but power-hungry; type B: efficient.  At low load the
  // optimal joint schedule should favor type B.
  TwoTypeModel model;
  model.type_a.servers = 3;
  model.type_a.power.idle_watts = 250.0;
  model.type_a.power.peak_watts = 500.0;
  model.type_a.delay.service_rate = 2.0;
  model.type_b.servers = 3;
  model.type_b.power.idle_watts = 80.0;
  model.type_b.power.peak_watts = 160.0;
  model.type_b.delay.service_rate = 1.0;

  rs::workload::Trace trace{{0.8, 0.8, 0.8, 0.8}};
  const HeteroProblem p = two_type_problem(model, trace);
  const HeteroResult result = solve_hetero_dp(p);
  ASSERT_TRUE(result.feasible());
  // Count slot-type usage: B must carry the (constant, low) load.
  int b_usage = 0;
  int a_usage = 0;
  for (const HeteroState& x : result.schedule) {
    a_usage += x[0];
    b_usage += x[1];
  }
  EXPECT_GT(b_usage, a_usage);
}

TEST(TwoType, JointStatesFeasibleOnlyWithEnoughCapacity) {
  TwoTypeModel model;
  model.type_a.servers = 1;
  model.type_b.servers = 1;
  rs::workload::Trace trace{{1.5}};
  const HeteroProblem p = two_type_problem(model, trace);
  // One server of each type cannot be avoided: (0,·) and (·,0) can carry at
  // most cap < 1.5 total.
  EXPECT_TRUE(std::isinf(p.f(1).at({0, 0})));
  EXPECT_TRUE(std::isinf(p.f(1).at({1, 0})));
  EXPECT_TRUE(std::isfinite(p.f(1).at({1, 1})));
  const HeteroResult result = solve_hetero_dp(p);
  ASSERT_TRUE(result.feasible());
  EXPECT_EQ(result.schedule[0], (HeteroState{1, 1}));
}

TEST(TwoType, MoreCapacityNeverIncreasesCost) {
  rs::util::Rng rng(74);
  TwoTypeModel small;
  small.type_a.servers = 2;
  small.type_b.servers = 2;
  TwoTypeModel large = small;
  large.type_a.servers = 4;
  large.type_b.servers = 4;

  rs::workload::DiurnalParams diurnal;
  diurnal.horizon = 12;
  diurnal.period = 6;
  diurnal.peak = 1.5;
  const rs::workload::Trace trace = rs::workload::diurnal(rng, diurnal);

  const double small_cost =
      solve_hetero_dp(two_type_problem(small, trace)).cost;
  const double large_cost =
      solve_hetero_dp(two_type_problem(large, trace)).cost;
  EXPECT_LE(large_cost, small_cost + 1e-9);
}

}  // namespace
