// Property tests for the Section-3 work functions: the definitions of
// Ĉ^L_τ / Ĉ^U_τ against brute force, and executable forms of Lemmas 6-11.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "offline/backward_solver.hpp"
#include "offline/dp_solver.hpp"
#include "offline/work_function.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace rs::offline;
using rs::core::Problem;
using rs::core::Schedule;
using rs::util::kInf;
using rs::workload::InstanceFamily;

// Brute-force Ĉ^B_τ(x): minimum of C^B over all schedules of length τ that
// end in state x.
double brute_chat(const Problem& p, int tau, int x, bool charge_up) {
  Schedule probe(static_cast<std::size_t>(tau), 0);
  double best = kInf;
  for (;;) {
    if (probe[static_cast<std::size_t>(tau - 1)] == x) {
      const double cost = charge_up
                              ? rs::core::cost_up_to(p.prefix(tau), probe)
                              : rs::core::cost_down_up_to(p.prefix(tau), probe);
      best = std::min(best, cost);
    }
    int position = 0;
    while (position < tau) {
      if (probe[static_cast<std::size_t>(position)] < p.max_servers()) {
        ++probe[static_cast<std::size_t>(position)];
        break;
      }
      probe[static_cast<std::size_t>(position)] = 0;
      ++position;
    }
    if (position == tau) break;
  }
  return best;
}

TEST(WorkFunction, MatchesBruteForceDefinition) {
  rs::util::Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 4));
    const int m = static_cast<int>(rng.uniform_int(1, 3));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, T, m, rng.uniform(0.3, 2.5));
    WorkFunctionTracker tracker(m, p.beta());
    for (int tau = 1; tau <= T; ++tau) {
      tracker.advance(p.f(tau));
      for (int x = 0; x <= m; ++x) {
        EXPECT_NEAR(tracker.chat_lower(x), brute_chat(p, tau, x, true), 1e-9)
            << "tau=" << tau << " x=" << x;
        EXPECT_NEAR(tracker.chat_upper(x), brute_chat(p, tau, x, false), 1e-9)
            << "tau=" << tau << " x=" << x;
      }
    }
  }
}

TEST(WorkFunction, ConstructionValidation) {
  EXPECT_THROW(WorkFunctionTracker(-1, 1.0), std::invalid_argument);
  EXPECT_THROW(WorkFunctionTracker(1, 0.0), std::invalid_argument);
  WorkFunctionTracker tracker(2, 1.0);
  EXPECT_THROW(tracker.chat_lower(0), std::logic_error);  // not started
  EXPECT_THROW(tracker.x_lower(), std::logic_error);
  EXPECT_THROW(tracker.advance(std::vector<double>{0.0}),
               std::invalid_argument);  // wrong arity
  tracker.advance(std::vector<double>{0.0, 1.0, 2.0});
  EXPECT_THROW(tracker.chat_lower(3), std::out_of_range);
  EXPECT_THROW(
      tracker.advance(std::vector<double>{0.0, std::nan(""), 1.0}),
      std::invalid_argument);
}

TEST(WorkFunction, FirstStepClosedForm) {
  // Ĉ^L_1(x) = f_1(x) + βx and Ĉ^U_1(x) = f_1(x) (Lemma 8/9 base case).
  const double beta = 1.75;
  WorkFunctionTracker tracker(3, beta);
  const std::vector<double> f1 = {4.0, 1.0, 0.5, 2.0};
  tracker.advance(f1);
  for (int x = 0; x <= 3; ++x) {
    EXPECT_NEAR(tracker.chat_lower(x), f1[static_cast<std::size_t>(x)] + beta * x, 1e-12);
    EXPECT_NEAR(tracker.chat_upper(x), f1[static_cast<std::size_t>(x)], 1e-12);
  }
  EXPECT_EQ(tracker.x_upper(), 2);  // argmin f_1
}

// Shared fixture: run the tracker over random instances and check a lemma
// at every step.
class WorkFunctionLemmaTest
    : public ::testing::TestWithParam<InstanceFamily> {};

TEST_P(WorkFunctionLemmaTest, Lemma7ChatLEqualsChatUPlusBetaX) {
  rs::util::Rng rng(7u + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(1, 9));
    const double beta = rng.uniform(0.2, 3.0);
    const Problem p = rs::workload::random_instance(rng, GetParam(), T, m, beta);
    WorkFunctionTracker tracker(m, beta);
    for (int tau = 1; tau <= T; ++tau) {
      tracker.advance(p.f(tau));
      for (int x = 0; x <= m; ++x) {
        const double lower = tracker.chat_lower(x);
        const double upper = tracker.chat_upper(x);
        if (std::isinf(lower) || std::isinf(upper)) {
          EXPECT_EQ(std::isinf(lower), std::isinf(upper));
        } else {
          EXPECT_NEAR(lower, upper + beta * x, 1e-8);
        }
      }
    }
  }
}

TEST_P(WorkFunctionLemmaTest, Lemma8ChatIsConvex) {
  rs::util::Rng rng(8u + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(2, 9));
    const double beta = rng.uniform(0.2, 3.0);
    const Problem p = rs::workload::random_instance(rng, GetParam(), T, m, beta);
    WorkFunctionTracker tracker(m, beta);
    for (int tau = 1; tau <= T; ++tau) {
      tracker.advance(p.f(tau));
      for (const std::vector<double>* chat :
           {&tracker.chat_lower_vector(), &tracker.chat_upper_vector()}) {
        double previous_slope = -kInf;
        for (int x = 1; x <= m; ++x) {
          const double a = (*chat)[static_cast<std::size_t>(x - 1)];
          const double b = (*chat)[static_cast<std::size_t>(x)];
          if (std::isinf(a) || std::isinf(b)) continue;
          const double slope = b - a;
          EXPECT_GE(slope, previous_slope - 1e-8) << "tau=" << tau;
          previous_slope = slope;
        }
      }
    }
  }
}

TEST_P(WorkFunctionLemmaTest, Lemma9And10SlopeBoundsAroundXUpper) {
  rs::util::Rng rng(9u + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(2, 9));
    const double beta = rng.uniform(0.2, 3.0);
    const Problem p = rs::workload::random_instance(rng, GetParam(), T, m, beta);
    WorkFunctionTracker tracker(m, beta);
    for (int tau = 1; tau <= T; ++tau) {
      tracker.advance(p.f(tau));
      const int x_upper = tracker.x_upper();
      // Lemma 10: ΔĈ^L(x) <= β for all x <= x^U.
      for (int x = 1; x <= x_upper; ++x) {
        const double a = tracker.chat_lower(x - 1);
        const double b = tracker.chat_lower(x);
        if (std::isinf(a) || std::isinf(b)) continue;
        EXPECT_LE(b - a, beta + 1e-8) << "tau=" << tau << " x=" << x;
      }
      // Lemma 9: ΔĈ^L(x^U + 1) >= β.
      if (x_upper < m) {
        const double a = tracker.chat_lower(x_upper);
        const double b = tracker.chat_lower(x_upper + 1);
        if (std::isfinite(a) && std::isfinite(b)) {
          EXPECT_GE(b - a, beta - 1e-8) << "tau=" << tau;
        }
      }
    }
  }
}

TEST_P(WorkFunctionLemmaTest, BoundsAreOrdered) {
  // x^L_τ <= x^U_τ: the LCP projection interval is never empty.
  rs::util::Rng rng(10u + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 6; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 15));
    const int m = static_cast<int>(rng.uniform_int(1, 10));
    const Problem p = rs::workload::random_instance(rng, GetParam(), T, m,
                                                    rng.uniform(0.2, 3.0));
    const BoundTrajectory bounds = compute_bounds(p);
    for (int t = 0; t < T; ++t) {
      EXPECT_LE(bounds.lower[static_cast<std::size_t>(t)],
                bounds.upper[static_cast<std::size_t>(t)]);
    }
  }
}

TEST_P(WorkFunctionLemmaTest, Lemma6BoundsSandwichAnOptimum) {
  // There is an optimal schedule with x^L_τ <= x*_τ <= x^U_τ for all τ —
  // witnessed by the Lemma-11 backward schedule, which must price at OPT.
  rs::util::Rng rng(11u + static_cast<std::uint64_t>(GetParam()));
  const DpSolver dp;
  for (int trial = 0; trial < 6; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Problem p = rs::workload::random_instance(rng, GetParam(), T, m,
                                                    rng.uniform(0.2, 3.0));
    const BoundTrajectory bounds = compute_bounds(p);
    const Schedule witness = backward_schedule(bounds);
    for (int t = 0; t < T; ++t) {
      ASSERT_GE(witness[static_cast<std::size_t>(t)],
                bounds.lower[static_cast<std::size_t>(t)]);
      ASSERT_LE(witness[static_cast<std::size_t>(t)],
                bounds.upper[static_cast<std::size_t>(t)]);
    }
    EXPECT_NEAR(rs::core::total_cost(p, witness), dp.solve_cost(p), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, WorkFunctionLemmaTest,
    ::testing::Values(InstanceFamily::kConvexTable, InstanceFamily::kQuadratic,
                      InstanceFamily::kAffineAbs, InstanceFamily::kFlatRegions),
    [](const ::testing::TestParamInfo<InstanceFamily>& info) {
      return rs::workload::family_name(info.param);
    });

TEST(WorkFunction, BoundsTieBreaking) {
  // f with a flat minimizer region: x^L picks the leftmost minimizer of
  // Ĉ^L, x^U the rightmost minimizer of Ĉ^U.
  const double beta = 10.0;  // dominate switching so Ĉ^U ~ f, Ĉ^L ~ f + βx
  WorkFunctionTracker tracker(4, beta);
  tracker.advance(std::vector<double>{1.0, 0.0, 0.0, 0.0, 1.0});
  EXPECT_EQ(tracker.x_lower(), 0);  // βx tips Ĉ^L's min toward... x=0? f(0)=1 vs f(1)+β=10 -> yes 0
  EXPECT_EQ(tracker.x_upper(), 3);  // rightmost minimizer of f
}

TEST(WorkFunction, Lemma11OptimalOnHandInstance) {
  // Worked example: two expensive-to-track spikes; LCP-style backward
  // schedule must equal the DP optimum exactly.
  const Problem p = rs::core::make_table_problem(
      2, 1.0,
      {{2.0, 0.5, 0.0}, {0.0, 0.5, 2.0}, {2.0, 0.5, 0.0}, {0.0, 0.5, 2.0}});
  const OfflineResult backward = BackwardSolver().solve(p);
  const double expected = DpSolver().solve_cost(p);
  EXPECT_NEAR(backward.cost, expected, 1e-12);
}

}  // namespace
