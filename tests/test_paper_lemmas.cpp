// Executable forms of the Section-2 correctness lemmas and exact (not
// Monte-Carlo) verification of the Section-4 rounding lemmas.
#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"
#include "core/transforms.hpp"
#include "offline/bounded_dp.hpp"
#include "offline/dp_solver.hpp"
#include "offline/grid_continuous.hpp"
#include "online/randomized_rounding.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "workload/random_instance.hpp"

namespace {

using rs::core::Problem;
using rs::core::Schedule;
using rs::util::ceil_star;
using rs::util::frac;
using rs::workload::InstanceFamily;

// Lemma 1: Φ_{k−l}(Ψ_l(P_l)) and Ψ_l(P_k) are equivalent — solving either
// restriction yields the same optimal cost.
TEST(Lemma1, PhiPsiCommute) {
  rs::util::Rng rng(51);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = 16;
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kConvexTable, 8, m, rng.uniform(0.3, 2.0));
    for (int l : {1, 2}) {
      for (int k = l + 1; k <= 3; ++k) {
        // Ψ_l(P_l): scale the Φ_l restriction down by 2^l; since P_l's
        // states are exactly the multiples of 2^l, the scaled instance uses
        // all integers of [0, m/2^l].  Restricting it to multiples of
        // 2^{k−l} must equal the Φ_k optimum of the original instance
        // (whose states scale down by 2^l to the same set).
        const Problem scaled = rs::core::psi_scale(p, l);
        const double via_scaled =
            rs::offline::solve_phi_restricted(scaled, k - l).cost;
        const double direct = rs::offline::solve_phi_restricted(p, k).cost;
        EXPECT_NEAR(via_scaled, direct, 1e-9)
            << "l=" << l << " k=" << k << " trial=" << trial;
      }
    }
  }
}

// Lemma 5 (the refinement invariant behind Theorem 1): for every optimal
// schedule X̂^k of P_k there is an optimal schedule of P_{k−1} within
// distance 2^k — so the bounded DP over the ±2·2^{k−1} candidate corridor
// around X̂^k must already attain OPT(P_{k−1}).
TEST(Lemma5, RefinementCorridorContainsNextOptimum) {
  rs::util::Rng rng(52);
  for (int trial = 0; trial < 12; ++trial) {
    const int m = 16;  // power of two: K = 2
    const int T = static_cast<int>(rng.uniform_int(2, 14));
    const Problem p = rs::workload::random_instance(
        rng, trial % 2 == 0 ? InstanceFamily::kConvexTable
                            : InstanceFamily::kQuadratic,
        T, m, rng.uniform(0.3, 2.5));
    for (int k = 2; k >= 1; --k) {
      const rs::offline::OfflineResult coarse =
          rs::offline::solve_phi_restricted(p, k);
      ASSERT_TRUE(coarse.feasible());
      // Candidate corridor of the paper's iteration k−1.
      std::vector<std::vector<int>> columns(static_cast<std::size_t>(T));
      for (int t = 0; t < T; ++t) {
        for (int xi = -2; xi <= 2; ++xi) {
          const int state =
              coarse.schedule[static_cast<std::size_t>(t)] + xi * (1 << (k - 1));
          if (state >= 0 && state <= m) {
            columns[static_cast<std::size_t>(t)].push_back(state);
          }
        }
      }
      const double corridor_cost = rs::offline::solve_bounded(p, columns).cost;
      const double next_optimum =
          rs::offline::solve_phi_restricted(p, k - 1).cost;
      EXPECT_NEAR(corridor_cost, next_optimum, 1e-9)
          << "k=" << k << " trial=" << trial;
    }
  }
}

// Lemma 3's consequence: the optimum of P_k is within a bounded factor...
// quantified directly: OPT(P_k) is non-increasing in refinement and reaches
// OPT(P) at k = 0, and the continuous optimum equals OPT(P) (Lemma 4).
TEST(Lemma4, ContinuousOptimumEqualsDiscrete) {
  rs::util::Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const int T = static_cast<int>(rng.uniform_int(1, 10));
    const int m = static_cast<int>(rng.uniform_int(1, 8));
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kFlatRegions, T, m, rng.uniform(0.3, 2.0));
    const double discrete = rs::offline::DpSolver().solve_cost(p);
    const double continuous =
        rs::offline::solve_continuous_on_grid(p, 3).cost;
    EXPECT_NEAR(continuous, discrete, 1e-9);
  }
}

// Lemma 20, exactly: evolve the joint distribution of (x_{t−1}, x_t) of the
// rounding chain and compare the exact expected power-up switching cost per
// step with the fractional schedule's.
TEST(Lemma20, ExactSwitchingExpectation) {
  rs::util::Rng rng(54);
  for (int trial = 0; trial < 30; ++trial) {
    const double max_step = trial % 2 == 0 ? 0.7 : 2.4;
    const int T = 40;
    rs::core::FractionalSchedule xbar(static_cast<std::size_t>(T));
    double value = 0.0;
    for (int t = 0; t < T; ++t) {
      value = rs::util::project(value + rng.uniform(-max_step, max_step),
                                0.0, 5.0);
      xbar[static_cast<std::size_t>(t)] = value;
    }

    double p_upper_prev = 0.0;
    double previous_fractional = 0.0;
    int prev_lower = 0;
    int prev_upper = 1;
    for (int t = 0; t < T; ++t) {
      const double x = xbar[static_cast<std::size_t>(t)];
      const int lower = static_cast<int>(std::floor(x));
      const int upper = static_cast<int>(ceil_star(x));
      const double from_lower = rs::online::rounding_upper_probability(
          prev_lower, previous_fractional, x);
      const double from_upper = rs::online::rounding_upper_probability(
          prev_upper, previous_fractional, x);

      // Exact E[(x_t − x_{t−1})⁺] over the four joint outcomes.
      auto up_move = [](int from, int to) {
        return static_cast<double>(std::max(0, to - from));
      };
      const double expected_up =
          (1.0 - p_upper_prev) *
              ((1.0 - from_lower) * up_move(prev_lower, lower) +
               from_lower * up_move(prev_lower, upper)) +
          p_upper_prev * ((1.0 - from_upper) * up_move(prev_upper, lower) +
                          from_upper * up_move(prev_upper, upper));
      const double fractional_up =
          std::max(0.0, x - previous_fractional);
      ASSERT_NEAR(expected_up, fractional_up, 1e-9)
          << "t=" << t << " xbar=" << x << " prev=" << previous_fractional;

      const double p_upper =
          (1.0 - p_upper_prev) * from_lower + p_upper_prev * from_upper;
      ASSERT_NEAR(p_upper, frac(x), 1e-9);
      p_upper_prev = p_upper;
      previous_fractional = x;
      prev_lower = lower;
      prev_upper = upper;
    }
  }
}

// Lemma 19, exactly: expected operating cost per step from the exact
// marginals equals the interpolated fractional operating cost.
TEST(Lemma19, ExactOperatingExpectation) {
  rs::util::Rng rng(55);
  const int T = 30;
  const Problem p = rs::workload::random_instance(
      rng, InstanceFamily::kConvexTable, T, 6, 1.0);
  rs::core::FractionalSchedule xbar(static_cast<std::size_t>(T));
  double value = 0.0;
  for (int t = 0; t < T; ++t) {
    value = rs::util::project(value + rng.uniform(-1.3, 1.3), 0.0, 6.0);
    xbar[static_cast<std::size_t>(t)] = value;
  }
  // By Lemma 18 the marginal of x_t is Bernoulli(frac) over {⌊⌋, ⌈⌉*}: the
  // expected operating cost is the eq.-(3) interpolation at x̄_t — exactly.
  for (int t = 1; t <= T; ++t) {
    const double x = xbar[static_cast<std::size_t>(t - 1)];
    const int lower = static_cast<int>(std::floor(x));
    const int upper = static_cast<int>(ceil_star(x));
    const double expected =
        (1.0 - frac(x)) * p.f(t).at(lower) + frac(x) * p.f(t).at(upper);
    // Interpolation uses ⌈x⌉ rather than ⌈x⌉*, but both agree because the
    // weight of the upper state is frac(x) = 0 whenever they differ.
    EXPECT_NEAR(expected, rs::core::interpolate(p.f(t), x), 1e-9) << t;
  }
}

// Scaling sanity used throughout Section 2.3: Ψ_l preserves schedule costs
// under the state correspondence x <-> x/2^l.
TEST(PsiScaling, OptimaCorrespond) {
  rs::util::Rng rng(56);
  for (int trial = 0; trial < 10; ++trial) {
    const Problem p = rs::workload::random_instance(
        rng, InstanceFamily::kQuadratic, 10, 8, rng.uniform(0.5, 2.0));
    // OPT(P_l) == OPT(Ψ_l(P_l)) for l = 1: the scaled instance's optimum
    // equals the Φ-restricted optimum of the original.
    const double restricted = rs::offline::solve_phi_restricted(p, 1).cost;
    const Problem scaled = rs::core::psi_scale(p, 1);
    const double scaled_cost = rs::offline::DpSolver().solve_cost(scaled);
    EXPECT_NEAR(restricted, scaled_cost, 1e-9);
  }
}

}  // namespace
